module U = Umlfront_uml
module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Library = Umlfront_simulink.Library
module Caam = Umlfront_simulink.Caam
module Trace = Umlfront_metamodel.Trace

type style = Caam | Flat

type result = {
  model : Model.t;
  trace : Trace.t;
  cross_links : int;
}

(* Inter-thread / environment data links, resolved after every
   Thread-SS is built. *)
type link_src = Src_thread of string * int | Src_model_in of string
type link_dst = Dst_thread of string * int | Dst_model_out of string

type thread_builder = {
  th_name : string;
  mutable th_blocks : (string * B.t * (string * B.param) list) list;  (* reverse *)
  th_env : (string, S.port_ref) Hashtbl.t;  (* token -> producing port *)
  mutable th_pending : (string * S.port_ref) list;  (* token -> consumer port *)
  mutable th_inports : string list;  (* reverse; length = count *)
  mutable th_outports : (string * string) list;  (* reverse: (name, token fed) *)
  th_names : (string, int) Hashtbl.t;  (* base name -> next suffix *)
}

let new_thread_builder th_name =
  {
    th_name;
    th_blocks = [];
    th_env = Hashtbl.create 8;
    th_pending = [];
    th_inports = [];
    th_outports = [];
    th_names = Hashtbl.create 8;
  }

let looks_like_boundary_port base =
  let starts prefix =
    String.length base > String.length prefix
    && String.sub base 0 (String.length prefix) = prefix
    && String.for_all
         (fun c -> c >= '0' && c <= '9')
         (String.sub base (String.length prefix) (String.length base - String.length prefix))
  in
  starts "In" || starts "Out"

let fresh_name tb base =
  (* Boundary ports are named In<k>/Out<k>; a block must not shadow
     them. *)
  let base = if looks_like_boundary_port base then "b_" ^ base else base in
  match Hashtbl.find_opt tb.th_names base with
  | None ->
      Hashtbl.replace tb.th_names base 1;
      base
  | Some n ->
      Hashtbl.replace tb.th_names base (n + 1);
      Printf.sprintf "%s%d" base n

let provide tb token port =
  if not (Hashtbl.mem tb.th_env token) then Hashtbl.replace tb.th_env token port

let add_inport tb token =
  let idx = List.length tb.th_inports + 1 in
  let name = Printf.sprintf "In%d" idx in
  tb.th_inports <- name :: tb.th_inports;
  provide tb token { S.block = name; S.port = 1 };
  idx

let add_outport tb token =
  let idx = List.length tb.th_outports + 1 in
  let name = Printf.sprintf "Out%d" idx in
  tb.th_outports <- (name, token) :: tb.th_outports;
  idx

let add_functional tb ~platform ~operation ~args ~result_token ~out_tokens =
  let n_args = List.length args in
  let name, ty, params =
    match (platform, Library.lookup operation) with
    | true, Some entry ->
        let params =
          if
            n_args > entry.Library.inputs
            && (entry.Library.block_type = B.Product || entry.Library.block_type = B.Mux)
          then ("Inputs", B.P_int n_args) :: entry.Library.params
          else if
            List.length out_tokens + 1 > entry.Library.outputs
            && entry.Library.block_type = B.Demux
          then ("Outputs", B.P_int (List.length out_tokens + 1)) :: entry.Library.params
          else entry.Library.params
        in
        (fresh_name tb operation, entry.Library.block_type, params)
    | true, None | false, _ ->
        (* User-defined behaviour: an S-Function (paper §4.1).  Output
           ports: the return first, then each out parameter. *)
        let outputs =
          (if result_token = None then 0 else 1) + List.length out_tokens
        in
        ( fresh_name tb operation,
          B.S_function,
          [
            ("FunctionName", B.P_string operation);
            ("Inputs", B.P_int n_args);
            ("Outputs", B.P_int outputs);
          ] )
  in
  tb.th_blocks <- (name, ty, params) :: tb.th_blocks;
  List.iteri
    (fun i token ->
      tb.th_pending <- (token, { S.block = name; S.port = i + 1 }) :: tb.th_pending)
    args;
  let first_out_port =
    match result_token with
    | Some token ->
        provide tb token { S.block = name; S.port = 1 };
        2
    | None -> 1
  in
  List.iteri
    (fun i token -> provide tb token { S.block = name; S.port = first_out_port + i })
    out_tokens;
  name

let build_thread_system tb =
  let sys = S.empty tb.th_name in
  let sys =
    List.fold_left
      (fun sys (i, name) ->
        S.add_block ~params:[ ("Port", B.P_int i) ] sys B.Inport name)
      sys
      (List.rev tb.th_inports |> List.mapi (fun i n -> (i + 1, n)))
  in
  let sys =
    List.fold_left
      (fun sys (name, ty, params) -> S.add_block ~params sys ty name)
      sys (List.rev tb.th_blocks)
  in
  let sys =
    List.fold_left
      (fun sys (i, name) ->
        S.add_block ~params:[ ("Port", B.P_int i) ] sys B.Outport name)
      sys
      (List.rev tb.th_outports |> List.mapi (fun i (n, _) -> (i + 1, n)))
  in
  (* Wire consumers to token producers; feedback tokens resolve here
     because all producers are registered by now. *)
  let sys =
    List.fold_left
      (fun sys (token, dst) ->
        match Hashtbl.find_opt tb.th_env token with
        | Some src -> S.add_line sys ~src ~dst
        | None -> sys)
      sys (List.rev tb.th_pending)
  in
  List.fold_left
    (fun sys (name, token) ->
      match Hashtbl.find_opt tb.th_env token with
      | Some src -> S.add_line sys ~src ~dst:{ S.block = name; S.port = 1 }
      | None -> sys)
    sys (List.rev tb.th_outports)

(* Mutable assembler for CPU-level and top-level systems. *)
type sys_builder = {
  sb_name : string;
  mutable sb_subsystems : (string * S.t * Caam.role) list;  (* reverse *)
  mutable sb_inports : string list;  (* reverse *)
  mutable sb_outports : string list;
  mutable sb_lines : (S.port_ref * S.port_ref) list;
}

let new_sys_builder sb_name =
  { sb_name; sb_subsystems = []; sb_inports = []; sb_outports = []; sb_lines = [] }

let sb_add_subsystem sb name sys role = sb.sb_subsystems <- (name, sys, role) :: sb.sb_subsystems

let sb_add_inport ?name sb =
  let idx = List.length sb.sb_inports + 1 in
  let name = match name with Some n -> n | None -> Printf.sprintf "In%d" idx in
  sb.sb_inports <- name :: sb.sb_inports;
  (idx, name)

let sb_add_outport ?name sb =
  let idx = List.length sb.sb_outports + 1 in
  let name = match name with Some n -> n | None -> Printf.sprintf "Out%d" idx in
  sb.sb_outports <- name :: sb.sb_outports;
  (idx, name)

let sb_line sb src dst = sb.sb_lines <- (src, dst) :: sb.sb_lines

let sb_build ~mark_roles sb =
  let sys = S.empty sb.sb_name in
  let sys =
    List.fold_left
      (fun sys (i, name) ->
        S.add_block ~params:[ ("Port", B.P_int i) ] sys B.Inport name)
      sys
      (List.rev sb.sb_inports |> List.mapi (fun i n -> (i + 1, n)))
  in
  let sys =
    List.fold_left
      (fun sys (name, nested, role) ->
        let sys = S.add_block ~system:(S.rename_system nested name) sys B.Subsystem name in
        if mark_roles then Caam.mark sys name role else sys)
      sys
      (List.rev sb.sb_subsystems)
  in
  let sys =
    List.fold_left
      (fun sys (i, name) ->
        S.add_block ~params:[ ("Port", B.P_int i) ] sys B.Outport name)
      sys
      (List.rev sb.sb_outports |> List.mapi (fun i n -> (i + 1, n)))
  in
  List.fold_left (fun sys (src, dst) -> S.add_line sys ~src ~dst) sys
    (List.rev sb.sb_lines)

let io_port_name (m : U.Sequence.message) =
  let op = m.U.Sequence.msg_operation in
  let stripped =
    if String.length op > 3 then String.sub op 3 (String.length op - 3) else op
  in
  if stripped = "" then m.U.Sequence.msg_to else stripped

let run ?(style = Caam) ~allocation uml =
  U.Validate.check_exn uml;
  let trace = Trace.create () in
  let threads = U.Model.threads uml in
  List.iter
    (fun th ->
      if not (List.mem_assoc th allocation) then
        invalid_arg (Printf.sprintf "mapping: thread %s has no CPU allocation" th))
    threads;
  let builders = List.map (fun th -> (th, new_thread_builder th)) threads in
  let builder th = List.assoc th builders in
  let links = ref [] in
  let add_link src dst = links := (src, dst) :: !links in
  (* Top-level port blocks share one namespace: a read and a write of
     the same IO signal ("getSample"/"setSample") must not collide. *)
  let model_inputs = ref [] in  (* reverse, deduped *)
  let model_outputs = ref [] in
  let model_input base =
    let rec unique candidate n =
      if List.mem candidate !model_outputs then unique (Printf.sprintf "%s_in%d" base n) (n + 1)
      else candidate
    in
    let name = unique base 1 in
    if not (List.mem name !model_inputs) then model_inputs := name :: !model_inputs;
    name
  in
  let model_output base =
    let rec unique candidate n =
      if List.mem candidate !model_outputs || List.mem candidate !model_inputs then
        unique (Printf.sprintf "%s_%d" base n) (n + 1)
      else candidate
    in
    let name = unique base 2 in
    model_outputs := name :: !model_outputs;
    name
  in
  let process_message sd_name idx (m : U.Sequence.message) =
    let caller = m.U.Sequence.msg_from in
    let msg_id = Printf.sprintf "%s:%d:%s" sd_name idx m.U.Sequence.msg_operation in
    match U.Model.kind_of_instance uml caller with
    | Some U.Classifier.Thread -> (
        let tb = builder caller in
        let callee_kind = U.Model.kind_of_instance uml m.U.Sequence.msg_to in
        let arg_tokens =
          List.map (fun (a : U.Sequence.arg) -> a.U.Sequence.arg_name) m.U.Sequence.msg_args
        in
        let result_token =
          Option.map (fun (a : U.Sequence.arg) -> a.U.Sequence.arg_name) m.U.Sequence.msg_result
        in
        let out_tokens =
          List.map (fun (a : U.Sequence.arg) -> a.U.Sequence.arg_name) m.U.Sequence.msg_outs
        in
        match callee_kind with
        | Some U.Classifier.Passive | Some U.Classifier.Platform ->
            let platform = callee_kind = Some U.Classifier.Platform in
            let block_name =
              add_functional tb ~platform ~operation:m.U.Sequence.msg_operation
                ~args:arg_tokens ~result_token ~out_tokens
            in
            Trace.record trace ~rule:"message_to_block" ~sources:[ msg_id ]
              ~targets:[ caller ^ "/" ^ block_name ]
        | Some U.Classifier.Thread ->
            let peer = builder m.U.Sequence.msg_to in
            if U.Sequence.is_send m then
              List.iter
                (fun token ->
                  let out_idx = add_outport tb token in
                  let in_idx = add_inport peer token in
                  add_link (Src_thread (caller, out_idx))
                    (Dst_thread (m.U.Sequence.msg_to, in_idx));
                  Trace.record trace ~rule:"send_to_channel" ~sources:[ msg_id ]
                    ~targets:[ Printf.sprintf "%s/Out%d" caller out_idx ])
                arg_tokens
            else if U.Sequence.is_receive m then (
              match result_token with
              | Some token ->
                  let out_idx = add_outport peer token in
                  let in_idx = add_inport tb token in
                  add_link
                    (Src_thread (m.U.Sequence.msg_to, out_idx))
                    (Dst_thread (caller, in_idx));
                  Trace.record trace ~rule:"receive_to_channel" ~sources:[ msg_id ]
                    ~targets:[ Printf.sprintf "%s/In%d" caller in_idx ]
              | None -> ())
            else ()
        | Some U.Classifier.Io_device ->
            if U.Sequence.is_io_read m then (
              match result_token with
              | Some token ->
                  let port = model_input (io_port_name m) in
                  let in_idx = add_inport tb token in
                  add_link (Src_model_in port) (Dst_thread (caller, in_idx));
                  Trace.record trace ~rule:"io_to_system_port" ~sources:[ msg_id ]
                    ~targets:[ port ]
              | None -> ())
            else if U.Sequence.is_io_write m then
              List.iter
                (fun token ->
                  let port = model_output (io_port_name m) in
                  let out_idx = add_outport tb token in
                  add_link (Src_thread (caller, out_idx)) (Dst_model_out port);
                  Trace.record trace ~rule:"io_to_system_port" ~sources:[ msg_id ]
                    ~targets:[ port ])
                arg_tokens
            else ()
        | None -> ())
    | Some U.Classifier.Passive | Some U.Classifier.Platform
    | Some U.Classifier.Io_device | None ->
        ()
  in
  List.iter
    (fun (sd : U.Sequence.t) ->
      List.iteri (fun idx m -> process_message sd.U.Sequence.sd_name idx m) sd.sd_messages)
    (U.Model.behaviours uml);
  let thread_systems =
    List.map (fun (th, tb) -> (th, build_thread_system tb)) builders
  in
  let links = List.rev !links in
  let top = new_sys_builder uml.U.Model.model_name in
  (match style with
  | Flat ->
      (* Conventional Simulink model: Thread-SS at top level, plain
         wires for every link. *)
      List.iter
        (fun (th, sys) ->
          sb_add_subsystem top th sys Caam.Thread;
          Trace.record trace ~rule:"thread_to_thread_ss" ~sources:[ th ] ~targets:[ th ])
        thread_systems;
      List.iter (fun name -> ignore (sb_add_inport ~name top)) (List.rev !model_inputs);
      List.iter (fun name -> ignore (sb_add_outport ~name top)) (List.rev !model_outputs);
      List.iter
        (fun (src, dst) ->
          let src_ref =
            match src with
            | Src_thread (th, port) -> { S.block = th; S.port = port }
            | Src_model_in name -> { S.block = name; S.port = 1 }
          in
          let dst_ref =
            match dst with
            | Dst_thread (th, port) -> { S.block = th; S.port = port }
            | Dst_model_out name -> { S.block = name; S.port = 1 }
          in
          sb_line top src_ref dst_ref)
        links
  | Caam ->
      let cpus =
        List.fold_left
          (fun acc th ->
            let cpu = List.assoc th allocation in
            if List.mem cpu acc then acc else acc @ [ cpu ])
          [] threads
      in
      let cpu_builders = List.map (fun c -> (c, new_sys_builder c)) cpus in
      let cpu_builder c = List.assoc c cpu_builders in
      let cpu_of th = List.assoc th allocation in
      List.iter
        (fun (th, sys) ->
          let cpu = cpu_of th in
          sb_add_subsystem (cpu_builder cpu) th sys Caam.Thread;
          Trace.record trace ~rule:"thread_to_thread_ss" ~sources:[ th ]
            ~targets:[ cpu ^ "/" ^ th ])
        thread_systems;
      List.iter
        (fun cpu ->
          Trace.record trace ~rule:"cpu_to_cpu_ss" ~sources:[ cpu ] ~targets:[ cpu ])
        cpus;
      List.iter (fun name -> ignore (sb_add_inport ~name top)) (List.rev !model_inputs);
      List.iter (fun name -> ignore (sb_add_outport ~name top)) (List.rev !model_outputs);
      List.iter
        (fun (src, dst) ->
          match (src, dst) with
          | Src_thread (p, pi), Dst_thread (c, ci) ->
              let cpu_p = cpu_of p and cpu_c = cpu_of c in
              if String.equal cpu_p cpu_c then
                sb_line (cpu_builder cpu_p)
                  { S.block = p; S.port = pi }
                  { S.block = c; S.port = ci }
              else (
                let out_k, out_name = sb_add_outport (cpu_builder cpu_p) in
                sb_line (cpu_builder cpu_p)
                  { S.block = p; S.port = pi }
                  { S.block = out_name; S.port = 1 };
                let in_k, in_name = sb_add_inport (cpu_builder cpu_c) in
                sb_line (cpu_builder cpu_c)
                  { S.block = in_name; S.port = 1 }
                  { S.block = c; S.port = ci };
                sb_line top
                  { S.block = cpu_p; S.port = out_k }
                  { S.block = cpu_c; S.port = in_k })
          | Src_model_in name, Dst_thread (c, ci) ->
              let cpu_c = cpu_of c in
              let in_k, in_name = sb_add_inport (cpu_builder cpu_c) in
              sb_line (cpu_builder cpu_c)
                { S.block = in_name; S.port = 1 }
                { S.block = c; S.port = ci };
              sb_line top { S.block = name; S.port = 1 } { S.block = cpu_c; S.port = in_k }
          | Src_thread (p, pi), Dst_model_out name ->
              let cpu_p = cpu_of p in
              let out_k, out_name = sb_add_outport (cpu_builder cpu_p) in
              sb_line (cpu_builder cpu_p)
                { S.block = p; S.port = pi }
                { S.block = out_name; S.port = 1 };
              sb_line top { S.block = cpu_p; S.port = out_k } { S.block = name; S.port = 1 }
          | Src_model_in _, Dst_model_out _ -> ())
        links;
      List.iter
        (fun (cpu, cb) -> sb_add_subsystem top cpu (sb_build ~mark_roles:true cb) Caam.Cpu)
        cpu_builders);
  let root = sb_build ~mark_roles:(style = Caam) top in
  let model = Model.make ~name:uml.U.Model.model_name root in
  let cross_links =
    List.length
      (List.filter
         (fun (src, dst) ->
           match (src, dst) with Src_thread _, Dst_thread _ -> true | _, _ -> false)
         links)
  in
  { model; trace; cross_links }
