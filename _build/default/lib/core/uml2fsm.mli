(** The control-flow branch of the design flow (Fig. 1): UML state
    diagrams are mapped to flat FSMs and handed to an FSM code
    generator, the path event-based subsystems take instead of the
    Simulink one. *)

type generated = {
  fsm : Umlfront_fsm.Fsm.t;
  minimized : Umlfront_fsm.Fsm.t;
  c_header : string;
  c_source : string;
  dot : string;
}

val run_one : ?minimize:bool -> Umlfront_uml.Statechart.t -> generated
(** Flatten, optionally minimize, and generate C + Graphviz. *)

val run : ?minimize:bool -> Umlfront_uml.Model.t -> (string * generated) list
(** One entry per statechart in the model. *)
