(** The UML → Simulink CAAM mapping of paper §4.1 (steps 2–3 of
    Fig. 2, before the optimization passes).

    Rules implemented:
    - each [<<SAengine>>] processor becomes a {e CPU-SS} subsystem,
      each [<<SASchedRes>>] thread a {e Thread-SS} inside its CPU;
    - a method call from a thread to a {e passive} object becomes an
      S-Function block (FunctionName = operation);
    - a call to the special {e Platform} object instantiates the
      predefined library block of the same name
      ({!Umlfront_simulink.Library}), falling back to an S-Function;
    - [In] arguments and the return value become block input/output
      ports; reusing a data token connects the producing port to the
      consuming port with a data link;
    - [Set]/[Get] calls between threads become Thread-SS boundary
      ports plus an inter-thread link (channelized later by
      {!Channel_inference});
    - [get*]/[set*] calls on [<<IO>>] objects become system-level
      input/output ports routed through the hierarchy.

    The allocation of threads to CPUs comes either from the UML
    deployment diagram or from {!Allocation} (§4.2.3). *)

type style =
  | Caam  (** CPU-SS / Thread-SS hierarchy, the MPSoC flow input *)
  | Flat  (** conventional Simulink model: Thread-SS at top level *)

type result = {
  model : Umlfront_simulink.Model.t;
  trace : Umlfront_metamodel.Trace.t;
      (** rule-tagged links from UML element names to block paths *)
  cross_links : int;  (** inter-thread data links awaiting channels *)
}

val run :
  ?style:style ->
  allocation:(string * string) list ->
  Umlfront_uml.Model.t ->
  result
(** [allocation] maps every thread to a CPU name.
    @raise Invalid_argument when a thread is missing from the
    allocation, or the UML model fails {!Umlfront_uml.Validate}. *)
