module U = Umlfront_uml
module S = Umlfront_simulink.System
module Model = Umlfront_simulink.Model
module Caam = Umlfront_simulink.Caam
module Trace = Umlfront_metamodel.Trace
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec

type finding = { subject : string; problem : string }

let pp_finding ppf f = Format.fprintf ppf "%s: %s" f.subject f.problem

let block_path_exists (m : Model.t) path =
  let parts = String.split_on_char '/' path in
  let rec descend sys = function
    | [] -> true
    | name :: rest -> (
        match S.find_block sys name with
        | Some b -> (
            match (rest, b.S.blk_system) with
            | [], _ -> true
            | _, Some inner -> descend inner rest
            | _, None -> false)
        | None -> false)
  in
  descend m.Model.root parts

let audit uml (o : Flow.output) =
  let findings = ref [] in
  let blame subject problem = findings := { subject; problem } :: !findings in
  let caam = o.Flow.caam in
  List.iter
    (fun (c : S.complaint) ->
      blame ("structure:" ^ c.S.path) c.S.gripe)
    (Model.validate caam);
  List.iter (fun gripe -> blame "caam" gripe) (Caam.check caam);
  (* Trace completeness for threads. *)
  List.iter
    (fun thread ->
      match Trace.targets_of ~rule:"thread_to_thread_ss" o.Flow.trace thread with
      | [] -> blame thread "no thread_to_thread_ss trace link"
      | targets ->
          List.iter
            (fun t ->
              if not (block_path_exists caam t) then
                blame thread (Printf.sprintf "trace target %s does not exist" t))
            targets)
    (U.Model.threads uml);
  (* Trace completeness for messages. *)
  List.iter
    (fun (sd : U.Sequence.t) ->
      List.iteri
        (fun i (m : U.Sequence.message) ->
          let id = Printf.sprintf "%s:%d:%s" sd.U.Sequence.sd_name i m.U.Sequence.msg_operation in
          let caller_is_thread =
            U.Model.kind_of_instance uml m.U.Sequence.msg_from = Some U.Classifier.Thread
          in
          match (caller_is_thread, U.Model.kind_of_instance uml m.U.Sequence.msg_to) with
          | true, (Some U.Classifier.Passive | Some U.Classifier.Platform) -> (
              match Trace.targets_of ~rule:"message_to_block" o.Flow.trace id with
              | [] -> blame id "no message_to_block trace link"
              | targets ->
                  List.iter
                    (fun t ->
                      (* The link stores thread/block; resolve through
                         the allocation to the full path. *)
                      let full =
                        match String.split_on_char '/' t with
                        | thread :: rest ->
                            (match List.assoc_opt thread o.Flow.allocation with
                            | Some cpu -> String.concat "/" (cpu :: thread :: rest)
                            | None -> t)
                        | [] -> t
                      in
                      if not (block_path_exists caam full) then
                        blame id (Printf.sprintf "generated block %s missing" full))
                    targets)
          | true, Some U.Classifier.Io_device -> (
              match Trace.targets_of ~rule:"io_to_system_port" o.Flow.trace id with
              | [] -> blame id "no io_to_system_port trace link"
              | ports ->
                  List.iter
                    (fun p ->
                      if S.find_block caam.Model.root p = None then
                        blame id (Printf.sprintf "system port %s missing" p))
                    ports)
          | _, _ -> ())
        sd.U.Sequence.sd_messages)
    (U.Model.behaviours uml);
  (* Executability. *)
  (match Exec.firing_order (Sdf.of_model caam) with
  | _ -> ()
  | exception Exec.Deadlock cycle ->
      blame "executability" ("zero-delay cycle: " ^ String.concat " -> " cycle));
  (* Allocation agreement. *)
  let placed = Caam.thread_names caam in
  List.iter
    (fun (thread, cpu) ->
      match List.assoc_opt thread placed with
      | Some actual when String.equal actual cpu -> ()
      | Some actual ->
          blame thread (Printf.sprintf "allocated to %s but placed in %s" cpu actual)
      | None ->
          if U.Model.kind_of_instance uml thread = Some U.Classifier.Thread then
            blame thread "allocated but absent from the CAAM")
    o.Flow.allocation;
  List.rev !findings

let audit_report uml o =
  match audit uml o with
  | [] -> "consistency audit: clean\n"
  | findings ->
      let buf = Buffer.create 256 in
      List.iter
        (fun f -> Buffer.add_string buf (Format.asprintf "  %a\n" pp_finding f))
        findings;
      Printf.sprintf "consistency audit: %d finding(s)\n%s" (List.length findings)
        (Buffer.contents buf)
