module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec

type outcome = {
  model : Model.t;
  delays_inserted : int;
  broken_cycles : string list list;
}

let fresh_delay_name sys =
  let rec try_name n =
    let candidate = Printf.sprintf "Delay%d" n in
    if S.find_block sys candidate = None then candidate else try_name (n + 1)
  in
  try_name 1

let leaf_name actor_name =
  match List.rev (String.split_on_char '/' actor_name) with
  | leaf :: _ -> leaf
  | [] -> actor_name

(* The line (in the system at [path]) that carries the given flattened
   edge: it starts at the source leaf block and its traced destinations
   include the edge's consumer. *)
let find_origin_line (m : Model.t) ~path (e : Sdf.edge) =
  let stack_sys =
    let rec descend sys = function
      | [] -> sys
      | name :: rest -> (
          match (S.find_block_exn sys name).S.blk_system with
          | Some inner -> descend inner rest
          | None -> invalid_arg "loop_breaker: path is not a subsystem chain")
    in
    descend m.Model.root path
  in
  let src_block = leaf_name e.Sdf.edge_src in
  S.lines stack_sys
  |> List.find_opt (fun (l : S.line) ->
         String.equal l.S.src.S.block src_block
         && l.S.src.S.port = e.Sdf.edge_src_port
         && List.exists
              (fun (actor, port) ->
                String.equal actor e.Sdf.edge_dst && port = e.Sdf.edge_dst_port)
              (Sdf.destinations_of_line m ~path l))

let splice_delay (m : Model.t) ~path (l : S.line) =
  let root =
    S.map_systems
      (fun p sys ->
        if p = path then (
          let name = fresh_delay_name sys in
          let sys = S.remove_line sys ~src:l.S.src ~dst:l.S.dst in
          let sys =
            S.add_block
              ~params:[ ("InitialCondition", B.P_float 0.0) ]
              sys B.Unit_delay name
          in
          let sys = S.add_line sys ~src:l.S.src ~dst:{ S.block = name; S.port = 1 } in
          S.add_line sys ~src:{ S.block = name; S.port = 1 } ~dst:l.S.dst)
        else sys)
      m.Model.root
  in
  Model.make ~solver:m.Model.solver ~stop_time:m.Model.stop_time ~name:m.Model.model_name
    root

let run ?(max_iterations = 100) (m : Model.t) =
  let rec loop m inserted cycles iteration =
    if iteration > max_iterations then
      failwith "loop_breaker: did not converge (malformed model?)";
    let sdf = Sdf.of_model m in
    match Exec.firing_order sdf with
    | _ -> { model = m; delays_inserted = inserted; broken_cycles = List.rev cycles }
    | exception Exec.Deadlock cycle -> (
        (* The cycle comes back as [v; ...; u] with the closing edge
           u -> v.  Break that edge. *)
        let v = List.hd cycle in
        let u = List.nth cycle (List.length cycle - 1) in
        let edge =
          sdf.Sdf.edges
          |> List.find_opt (fun (e : Sdf.edge) ->
                 String.equal e.Sdf.edge_src u && String.equal e.Sdf.edge_dst v)
        in
        match edge with
        | None -> failwith "loop_breaker: cycle edge not found in SDF"
        | Some e -> (
            let path = (Option.get (Sdf.find_actor sdf u)).Sdf.actor_path in
            match find_origin_line m ~path e with
            | None -> failwith "loop_breaker: origin line of cycle edge not found"
            | Some l ->
                loop (splice_delay m ~path l) (inserted + 1) (cycle :: cycles)
                  (iteration + 1)))
  in
  loop m 0 [] 0
