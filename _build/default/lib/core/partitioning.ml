module U = Umlfront_uml
module G = Umlfront_taskgraph.Graph
module Algo = Umlfront_taskgraph.Algo
module Clustering = Umlfront_taskgraph.Clustering
module Lc = Umlfront_taskgraph.Linear_clustering

type result = {
  partitioned : U.Model.t;
  thread_of_call : (string * string) list;
  cut_tokens : (string * string * string) list;
}

type call = {
  call_id : string;
  call_msg : U.Sequence.message;
  call_kind : [ `Functional | `Io_read | `Io_write ];
}

let single_thread uml =
  match U.Model.threads uml with
  | [ t ] -> t
  | threads ->
      invalid_arg
        (Printf.sprintf "partitioning: expected exactly one thread, found %d"
           (List.length threads))

let calls_of uml thread =
  U.Model.behaviours uml
  |> List.concat_map (fun (sd : U.Sequence.t) ->
         List.mapi
           (fun i (m : U.Sequence.message) ->
             if not (String.equal m.U.Sequence.msg_from thread) then None
             else
               let id =
                 Printf.sprintf "%s:%d:%s" sd.U.Sequence.sd_name i
                   m.U.Sequence.msg_operation
               in
               match U.Model.kind_of_instance uml m.U.Sequence.msg_to with
               | Some U.Classifier.Passive | Some U.Classifier.Platform ->
                   Some { call_id = id; call_msg = m; call_kind = `Functional }
               | Some U.Classifier.Io_device ->
                   let kind =
                     if U.Sequence.is_io_read m then `Io_read else `Io_write
                   in
                   Some { call_id = id; call_msg = m; call_kind = kind }
               | Some U.Classifier.Thread | None -> None)
           sd.U.Sequence.sd_messages
         |> List.filter_map Fun.id)

let token_bytes (a : U.Sequence.arg) = max 1 (U.Datatype.size_bytes a.U.Sequence.arg_type)

let producers calls =
  (* token -> producing functional call id (first producer wins) *)
  let table = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if c.call_kind = `Functional then
        match c.call_msg.U.Sequence.msg_result with
        | Some r ->
            if not (Hashtbl.mem table r.U.Sequence.arg_name) then
              Hashtbl.replace table r.U.Sequence.arg_name (c.call_id, r)
        | None -> ())
    calls;
  table

let call_graph uml =
  let thread = single_thread uml in
  let calls = calls_of uml thread in
  let g = G.create () in
  List.iter
    (fun c -> if c.call_kind = `Functional then G.add_node g c.call_id)
    calls;
  let produced = producers calls in
  List.iter
    (fun c ->
      if c.call_kind = `Functional then
        List.iter
          (fun (a : U.Sequence.arg) ->
            match Hashtbl.find_opt produced a.U.Sequence.arg_name with
            | Some (producer_id, _) when producer_id <> c.call_id ->
                G.add_edge g ~weight:(float_of_int (token_bytes a)) producer_id c.call_id
            | Some _ | None -> ())
          c.call_msg.U.Sequence.msg_args)
    calls;
  g

let acyclic_view g =
  if Algo.is_acyclic g then g
  else
    let back = Algo.all_back_edges g in
    G.of_lists
      ~nodes:(List.map (fun id -> (id, G.node_weight g id)) (G.nodes g))
      ~edges:(List.filter (fun (s, d, _) -> not (List.mem (s, d) back)) (G.edges g))

let run ?threads uml =
  let original = single_thread uml in
  let calls = calls_of uml original in
  let functional = List.filter (fun c -> c.call_kind = `Functional) calls in
  if functional = [] then invalid_arg "partitioning: model has no functional calls";
  let g = acyclic_view (call_graph uml) in
  let clustering =
    match threads with
    | Some n -> Lc.run_bounded ~max_clusters:n g
    | None -> Lc.run g
  in
  let thread_name i = Printf.sprintf "%s%d" original i in
  let cluster_of_call id = Clustering.cluster_of clustering id in
  let thread_of_call =
    List.map (fun c -> (c.call_id, thread_name (cluster_of_call c.call_id))) functional
  in
  let produced = producers calls in
  (* IO reads join the cluster of their result's first consumer; IO
     writes the cluster of their argument's producer. *)
  let rec producer_cluster token =
    match Hashtbl.find_opt produced token with
    | Some (id, _) -> Some (cluster_of_call id)
    | None ->
        (* An IO read may be the producer; it lives with the cluster
           io_cluster assigns it, so its token can still be forwarded. *)
        calls
        |> List.find_opt (fun c ->
               c.call_kind = `Io_read
               &&
               match c.call_msg.U.Sequence.msg_result with
               | Some r -> String.equal r.U.Sequence.arg_name token
               | None -> false)
        |> Option.map io_cluster
  and io_cluster c =
    match c.call_kind with
    | `Io_read -> (
        match c.call_msg.U.Sequence.msg_result with
        | Some r ->
            let consumer =
              List.find_opt
                (fun fc ->
                  List.exists
                    (fun (a : U.Sequence.arg) ->
                      String.equal a.U.Sequence.arg_name r.U.Sequence.arg_name)
                    fc.call_msg.U.Sequence.msg_args)
                functional
            in
            Option.value (Option.map (fun fc -> cluster_of_call fc.call_id) consumer)
              ~default:0
        | None -> 0)
    | `Io_write -> (
        match c.call_msg.U.Sequence.msg_args with
        | a :: _ -> Option.value (producer_cluster a.U.Sequence.arg_name) ~default:0
        | [] -> 0)
    | `Functional -> cluster_of_call c.call_id
  in
  (* Inter-cluster token transfers. *)
  let cuts = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let consumer_cluster = io_cluster c in
      List.iter
        (fun (a : U.Sequence.arg) ->
          match producer_cluster a.U.Sequence.arg_name with
          | Some p when p <> consumer_cluster ->
              Hashtbl.replace cuts (a.U.Sequence.arg_name, p, consumer_cluster) a
          | Some _ | None -> ())
        c.call_msg.U.Sequence.msg_args)
    calls;
  (* Rebuild the model. *)
  let n_clusters = Clustering.cluster_count clustering in
  let old_instances =
    List.filter
      (fun (i : U.Classifier.instance) ->
        not (String.equal i.U.Classifier.inst_name original))
      uml.U.Model.instances
  in
  (* New thread classes carry the Set operations they receive. *)
  let set_op token (a : U.Sequence.arg) =
    U.Operation.make ("Set_" ^ token)
      ~params:[ U.Operation.param ~dir:U.Operation.In token a.U.Sequence.arg_type ]
  in
  let receives i =
    Hashtbl.fold
      (fun (token, _, consumer) a acc ->
        if consumer = i then set_op token a :: acc else acc)
      cuts []
  in
  let new_thread_classes =
    List.init n_clusters (fun i ->
        U.Classifier.cls ~operations:(receives i) U.Classifier.Thread
          (thread_name i ^ "_cls"))
  in
  let new_thread_instances =
    List.init n_clusters (fun i ->
        { U.Classifier.inst_name = thread_name i; inst_class = thread_name i ^ "_cls" })
  in
  let old_classes =
    List.filter
      (fun (c : U.Classifier.cls) ->
        not (List.exists
               (fun (i : U.Classifier.instance) ->
                 String.equal i.U.Classifier.inst_name original
                 && String.equal i.U.Classifier.inst_class c.U.Classifier.cls_name)
               uml.U.Model.instances))
      uml.U.Model.classes
  in
  (* The partitioned behaviour: original calls re-homed, plus one Set
     per cut token appended (token wiring is order-independent). *)
  let rehomed =
    List.map
      (fun c ->
        { c.call_msg with U.Sequence.msg_from = thread_name (io_cluster c) })
      calls
  in
  let transfers =
    Hashtbl.fold
      (fun (token, p, consumer) (a : U.Sequence.arg) acc ->
        U.Sequence.message
          ~args:[ { a with U.Sequence.arg_name = token } ]
          ~from:(thread_name p) ~target:(thread_name consumer) ("Set_" ^ token)
        :: acc)
      cuts []
  in
  let sequences = [ U.Sequence.make "partitioned" (rehomed @ transfers) ] in
  let partitioned =
    U.Model.make
      ~classes:(old_classes @ new_thread_classes)
      ~instances:(old_instances @ new_thread_instances)
      ~sequences ~statecharts:uml.U.Model.statecharts
      (uml.U.Model.model_name ^ "_partitioned")
  in
  {
    partitioned;
    thread_of_call;
    cut_tokens =
      Hashtbl.fold
        (fun (token, p, consumer) _ acc ->
          (token, thread_name p, thread_name consumer) :: acc)
        cuts []
      |> List.sort compare;
  }
