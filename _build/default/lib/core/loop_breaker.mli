(** Insertion of temporal barriers (paper §4.2.2).

    The generated model is searched for cyclic dataflow paths (by
    flattening it to SDF and asking for a firing order); for each cycle
    found, a Simulink [UnitDelay] block is spliced into the data link
    that closes the loop, at the hierarchy level where the loop's back
    edge originates.  Repeats until the model is deadlock-free. *)

type outcome = {
  model : Umlfront_simulink.Model.t;
  delays_inserted : int;
  broken_cycles : string list list;
      (** the actor cycles that were broken, in insertion order *)
}

val run : ?max_iterations:int -> Umlfront_simulink.Model.t -> outcome
(** @raise Failure when [max_iterations] (default 100) passes do not
    reach a deadlock-free model (should be impossible: every pass
    removes at least one cycle). *)
