(** Reverse mapping: capturing a Simulink CAAM back into a UML model.

    The paper's §2 notes that the GeneralStore platform only supports
    {e capturing} a Simulink model in UML, while this tool synthesizes
    the Simulink side.  Implementing the capture direction as well
    makes the pair bidirectional: threads are recovered from the
    Thread-SS hierarchy, the deployment from the CPU-SS layer, and
    each thread's behaviour from its blocks in dataflow order (library
    blocks become Platform calls, S-Functions passive-object calls,
    cross-thread channels Set messages, top-level ports [<<IO>>]
    traffic).

    Round-trip guarantee (tested): re-running the forward flow on a
    captured model reproduces a CAAM with the same CPU/thread/channel
    structure, the same S-Function set, and no additional temporal
    barriers. *)

val run : Umlfront_simulink.Model.t -> Umlfront_uml.Model.t
(** @raise Invalid_argument when the model is not a CAAM (no CPU-SS
    role markings) or contains a zero-delay cycle. *)
