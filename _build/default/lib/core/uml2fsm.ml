module F = Umlfront_fsm

type generated = {
  fsm : F.Fsm.t;
  minimized : F.Fsm.t;
  c_header : string;
  c_source : string;
  dot : string;
}

let run_one ?(minimize = true) chart =
  let fsm = F.Flatten.run chart in
  let minimized = if minimize then F.Minimize.run fsm else fsm in
  {
    fsm;
    minimized;
    c_header = F.Codegen_c.header minimized;
    c_source = F.Codegen_c.source minimized;
    dot = F.Dot.to_string minimized;
  }

let run ?minimize (uml : Umlfront_uml.Model.t) =
  List.map
    (fun (chart : Umlfront_uml.Statechart.t) ->
      (chart.Umlfront_uml.Statechart.sc_name, run_one ?minimize chart))
    uml.Umlfront_uml.Model.statecharts
