module U = Umlfront_uml
module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Caam = Umlfront_simulink.Caam
module Library = Umlfront_simulink.Library
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec

let sanitize s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c
      else '_')
    s

(* Reverse library lookup: the Platform method whose entry instantiates
   this block, discriminating same-type entries by their parameters
   (Sum "+-" is `sub`, Sum "++" is `add`). *)
let platform_method (blk : S.block) =
  match blk.S.blk_type with
  | B.Unit_delay -> Some "delay"
  | B.Sum ->
      Some (if S.param_string blk "Inputs" = Some "+-" then "sub" else "add")
  | B.Trig -> Some (Option.value (S.param_string blk "Function") ~default:"sin")
  | B.Min_max -> Some (Option.value (S.param_string blk "Function") ~default:"max")
  | B.Math -> Some (Option.value (S.param_string blk "Function") ~default:"exp")
  | ty ->
      Library.entries
      |> List.find_opt (fun e -> e.Library.block_type = ty)
      |> Option.map (fun e -> e.Library.method_name)

let run (m : Model.t) =
  if Caam.cpus m = [] then invalid_arg "capture: model has no CPU-SS layer";
  let sdf = Sdf.of_model m in
  let order = Exec.firing_order sdf in
  let actor name = Option.get (Sdf.find_actor sdf name) in
  let b = U.Builder.create (m.Model.model_name ^ "_captured") in
  (* Deployment layer. *)
  List.iter
    (fun cpu ->
      U.Builder.cpu b cpu.S.blk_name;
      List.iter
        (fun th ->
          U.Builder.thread b th.S.blk_name;
          U.Builder.allocate b ~thread:th.S.blk_name ~cpu:cpu.S.blk_name)
        (Caam.threads_of_cpu cpu))
    (Caam.cpus m);
  let needs_platform =
    List.exists
      (fun (a : Sdf.actor) ->
        a.Sdf.actor_path <> []
        && a.Sdf.actor_block.S.blk_type <> B.S_function
        && platform_method a.Sdf.actor_block <> None)
      sdf.Sdf.actors
  in
  if needs_platform then U.Builder.platform b "Platform";
  let has_env = sdf.Sdf.graph_inputs <> [] || sdf.Sdf.graph_outputs <> [] in
  if has_env then U.Builder.io_device b "IODevice";
  (* Passive objects: one per S-Function actor, so same-named
     behaviours with different arities keep distinct operations. *)
  let sfun_object = Hashtbl.create 8 in
  List.iter
    (fun (a : Sdf.actor) ->
      if a.Sdf.actor_path <> [] && a.Sdf.actor_block.S.blk_type = B.S_function then (
        let obj = "o_" ^ sanitize a.Sdf.actor_name in
        U.Builder.passive_object b ~cls:("C_" ^ sanitize a.Sdf.actor_name) obj;
        Hashtbl.replace sfun_object a.Sdf.actor_name obj))
    sdf.Sdf.actors;
  (* Token per producing (actor, out port). *)
  let token_of name port = Printf.sprintf "t_%s_%d" (sanitize name) port in
  let arg_of name port = U.Sequence.arg (token_of name port) U.Datatype.D_float in
  let thread_of (a : Sdf.actor) =
    match a.Sdf.actor_path with
    | _ :: thread :: _ -> Some thread
    | [ _ ] | [] -> None
  in
  (* Functional calls, in global firing order (thread order follows). *)
  List.iter
    (fun name ->
      let a = actor name in
      match thread_of a with
      | None -> ()
      | Some thread ->
          let args =
            List.init a.Sdf.actor_inputs (fun i -> i + 1)
            |> List.filter_map (fun port ->
                   Sdf.preds sdf name
                   |> List.find_opt (fun (e : Sdf.edge) -> e.Sdf.edge_dst_port = port)
                   |> Option.map (fun (e : Sdf.edge) ->
                          arg_of e.Sdf.edge_src e.Sdf.edge_src_port))
          in
          let result =
            if a.Sdf.actor_outputs >= 1 then Some (arg_of name 1) else None
          in
          let outs =
            List.init (max 0 (a.Sdf.actor_outputs - 1)) (fun i -> arg_of name (i + 2))
          in
          (match a.Sdf.actor_block.S.blk_type with
          | B.S_function ->
              let fn =
                Option.value
                  (S.param_string a.Sdf.actor_block "FunctionName")
                  ~default:a.Sdf.actor_block.S.blk_name
              in
              U.Builder.call b ~from:thread
                ~target:(Hashtbl.find sfun_object a.Sdf.actor_name)
                fn ~args ?result ~outs
          | _ -> (
              match platform_method a.Sdf.actor_block with
              | Some op ->
                  U.Builder.call b ~from:thread ~target:"Platform" op ~args ?result ~outs
              | None -> ())))
    order;
  (* Cross-thread and environment links (one message per distinct
     token/endpoint pair, whatever the fan-out). *)
  let seen = Hashtbl.create 16 in
  let once key f =
    if not (Hashtbl.mem seen key) then (
      Hashtbl.replace seen key ();
      f ())
  in
  List.iter
    (fun (e : Sdf.edge) ->
      let src = actor e.Sdf.edge_src and dst = actor e.Sdf.edge_dst in
      let token = arg_of e.Sdf.edge_src e.Sdf.edge_src_port in
      match (thread_of src, thread_of dst) with
      | Some p, Some c when not (String.equal p c) ->
          once (token.U.Sequence.arg_name, p, c) (fun () ->
              U.Builder.call b ~from:p ~target:c
                ("Set_" ^ token.U.Sequence.arg_name)
                ~args:[ token ])
      | Some _, Some _ -> ()
      | None, Some c ->
          (* Top-level Inport feeding thread c: an IO read binding the
             port's token, issued by the consumer thread. *)
          once (token.U.Sequence.arg_name, "env", c) (fun () ->
              U.Builder.call b ~from:c ~target:"IODevice"
                ("get" ^ sanitize src.Sdf.actor_name)
                ~result:token)
      | Some p, None ->
          once (token.U.Sequence.arg_name, p, "env:" ^ dst.Sdf.actor_name) (fun () ->
              U.Builder.call b ~from:p ~target:"IODevice"
                ("set" ^ sanitize dst.Sdf.actor_name)
                ~args:[ token ])
      | None, None -> ())
    sdf.Sdf.edges;
  U.Builder.finish b
