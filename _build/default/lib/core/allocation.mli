(** Automatic thread allocation (paper §4.2.3).

    The data dependencies between threads are captured from the
    sequence diagrams and turned into a task graph: nodes are threads
    (weight: number of functional calls the thread performs), edges
    carry the amount of transferred data in bytes.  Linear clustering
    (Gerasoulis & Yang) groups heavily-communicating threads; each
    cluster becomes a CPU, making the deployment diagram unnecessary. *)

val task_graph : Umlfront_uml.Model.t -> Umlfront_taskgraph.Graph.t
(** [Set] messages add an edge caller → callee, [Get] messages callee →
    caller, weighted by {!Umlfront_uml.Sequence.transferred_bytes};
    repeated communication accumulates. *)

type strategy =
  | Linear  (** one CPU per linear cluster *)
  | Bounded of int  (** linear clustering folded to at most N CPUs *)

val infer :
  ?strategy:strategy ->
  ?cpu_prefix:string ->
  Umlfront_uml.Model.t ->
  (string * string) list
(** Thread → CPU name ([CPU0], [CPU1], ... in cluster-discovery order:
    the graph's critical path lands on [CPU0]).  Mutually-communicating
    threads make the task graph cyclic; back edges are dropped before
    clustering (the data still flows — only the allocation heuristic
    ignores the feedback direction). *)

val from_deployment : Umlfront_uml.Model.t -> (string * string) list option
(** The manual allocation, when the model carries a deployment
    diagram. *)
