(** Automatic thread partitioning — the remaining §6 future-work item:
    "This would avoid the need for the designer to specify the
    deployment and partition the system into threads".

    Input: a UML model whose behaviour lives in {e one} thread (the
    designer wrote a single sequential diagram).  The call-level
    dataflow graph is built (one node per functional call, edges
    weighted by the bytes of the shared tokens), clustered with the
    same linear-clustering engine used for CPU allocation, and the
    model is rewritten into one thread per cluster with the required
    [Set*] messages inserted at cluster boundaries — producing exactly
    the kind of multi-threaded model §4 consumes. *)

type result = {
  partitioned : Umlfront_uml.Model.t;
  thread_of_call : (string * string) list;
      (** message id ("sd:index:operation") → new thread *)
  cut_tokens : (string * string * string) list;
      (** (token, producer thread, consumer thread) for each inserted
          inter-thread transfer *)
}

val run : ?threads:int -> Umlfront_uml.Model.t -> result
(** [threads] bounds the partition size (default: unbounded linear
    clustering).  IO reads/writes stay with the cluster of their
    consumer/producer call.
    @raise Invalid_argument when the model does not have exactly one
    thread, or has no functional calls. *)

val call_graph : Umlfront_uml.Model.t -> Umlfront_taskgraph.Graph.t
(** The call-level dataflow graph the partitioner clusters: nodes are
    functional calls of the single thread ("sd:index:operation"),
    edges follow token production/consumption. *)
