module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Caam = Umlfront_simulink.Caam

type outcome = {
  model : Model.t;
  intra_channels : int;
  inter_channels : int;
}

let fresh_channel_name sys =
  let rec try_name n =
    let candidate = Printf.sprintf "ch%d" n in
    if S.find_block sys candidate = None then candidate else try_name (n + 1)
  in
  try_name 1

let splice_channel sys (l : S.line) protocol =
  let name = fresh_channel_name sys in
  let sys = S.remove_line sys ~src:l.S.src ~dst:l.S.dst in
  let sys =
    S.add_block
      ~params:
        [
          (Caam.protocol_param, B.P_string protocol);
          (Caam.role_param, B.P_string "comm");
        ]
      sys B.Channel name
  in
  let sys = S.add_line sys ~src:l.S.src ~dst:{ S.block = name; S.port = 1 } in
  S.add_line sys ~src:{ S.block = name; S.port = 1 } ~dst:l.S.dst

let run (m : Model.t) =
  let intra = ref 0 and inter = ref 0 in
  let channelize sys =
    let role_of name =
      match S.find_block sys name with Some b -> Caam.role_of_block b | None -> None
    in
    let candidates =
      List.filter
        (fun (l : S.line) ->
          match (role_of l.S.src.S.block, role_of l.S.dst.S.block) with
          | Some Caam.Cpu, Some Caam.Cpu | Some Caam.Thread, Some Caam.Thread -> true
          | _, _ -> false)
        (S.lines sys)
    in
    List.fold_left
      (fun sys (l : S.line) ->
        match role_of l.S.src.S.block with
        | Some Caam.Cpu ->
            incr inter;
            splice_channel sys l "GFIFO"
        | Some Caam.Thread ->
            incr intra;
            splice_channel sys l "SWFIFO"
        | Some Caam.Comm | None -> sys)
      sys candidates
  in
  let root = S.map_systems (fun _path sys -> channelize sys) m.Model.root in
  {
    model = Model.make ~solver:m.Model.solver ~stop_time:m.Model.stop_time
        ~name:m.Model.model_name root;
    intra_channels = !intra;
    inter_channels = !inter;
  }
