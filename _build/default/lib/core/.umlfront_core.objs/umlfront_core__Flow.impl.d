lib/core/flow.ml: Allocation Channel_inference List Logs Loop_breaker Mapping Metamodels String Uml2fsm Umlfront_codegen Umlfront_metamodel Umlfront_simulink Umlfront_uml
