lib/core/metamodels.ml: Hashtbl List Option String Umlfront_fsm Umlfront_metamodel Umlfront_simulink Umlfront_uml
