lib/core/mapping.ml: Hashtbl List Option Printf String Umlfront_metamodel Umlfront_simulink Umlfront_uml
