lib/core/allocation.mli: Umlfront_taskgraph Umlfront_uml
