lib/core/consistency.ml: Buffer Flow Format List Printf String Umlfront_dataflow Umlfront_metamodel Umlfront_simulink Umlfront_uml
