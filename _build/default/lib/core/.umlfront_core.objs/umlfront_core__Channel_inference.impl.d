lib/core/channel_inference.ml: List Printf Umlfront_simulink
