lib/core/flow.mli: Mapping Uml2fsm Umlfront_codegen Umlfront_metamodel Umlfront_simulink Umlfront_uml
