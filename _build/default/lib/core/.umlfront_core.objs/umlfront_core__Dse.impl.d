lib/core/dse.ml: Buffer Float Flow List Option Printf Umlfront_dataflow Umlfront_uml
