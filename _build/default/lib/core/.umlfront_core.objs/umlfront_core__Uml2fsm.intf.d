lib/core/uml2fsm.mli: Umlfront_fsm Umlfront_uml
