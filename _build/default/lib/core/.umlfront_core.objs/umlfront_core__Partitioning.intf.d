lib/core/partitioning.mli: Umlfront_taskgraph Umlfront_uml
