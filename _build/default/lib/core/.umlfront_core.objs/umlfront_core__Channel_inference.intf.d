lib/core/channel_inference.mli: Umlfront_simulink
