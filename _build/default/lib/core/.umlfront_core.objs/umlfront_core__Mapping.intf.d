lib/core/mapping.mli: Umlfront_metamodel Umlfront_simulink Umlfront_uml
