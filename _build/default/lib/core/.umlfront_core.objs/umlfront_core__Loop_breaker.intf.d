lib/core/loop_breaker.mli: Umlfront_simulink
