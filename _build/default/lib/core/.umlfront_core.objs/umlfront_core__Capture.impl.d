lib/core/capture.ml: Hashtbl List Option Printf String Umlfront_dataflow Umlfront_simulink Umlfront_uml
