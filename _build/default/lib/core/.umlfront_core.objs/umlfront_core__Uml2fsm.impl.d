lib/core/uml2fsm.ml: List Umlfront_fsm Umlfront_uml
