lib/core/allocation.ml: Hashtbl List Option Printf Umlfront_taskgraph Umlfront_uml
