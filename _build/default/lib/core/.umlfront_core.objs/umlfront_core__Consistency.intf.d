lib/core/consistency.mli: Flow Format Umlfront_uml
