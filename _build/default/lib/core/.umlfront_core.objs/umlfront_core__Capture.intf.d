lib/core/capture.mli: Umlfront_simulink Umlfront_uml
