lib/core/metamodels.mli: Umlfront_fsm Umlfront_metamodel Umlfront_simulink Umlfront_uml
