lib/core/dse.mli: Umlfront_dataflow Umlfront_uml
