lib/core/report.ml: Buffer Flow List Option Printf String Umlfront_simulink Umlfront_taskgraph
