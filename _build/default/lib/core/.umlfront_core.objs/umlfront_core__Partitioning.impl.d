lib/core/partitioning.ml: Fun Hashtbl List Option Printf String Umlfront_taskgraph Umlfront_uml
