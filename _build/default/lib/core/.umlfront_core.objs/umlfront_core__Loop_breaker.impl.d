lib/core/loop_breaker.ml: List Option Printf String Umlfront_dataflow Umlfront_simulink
