lib/core/m2m.ml: List Metamodels Option String Umlfront_fsm Umlfront_metamodel Umlfront_transform Umlfront_uml
