lib/core/report.mli: Flow Umlfront_simulink Umlfront_taskgraph
