lib/core/m2m.mli: Umlfront_fsm Umlfront_metamodel Umlfront_transform Umlfront_uml
