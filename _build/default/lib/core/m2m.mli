(** The control-flow mapping expressed as a {e generic} rule-based
    model-to-model transformation over the explicit metamodels of
    {!Metamodels} — the smartQVT/ATL-style path of the paper's Fig. 2,
    as opposed to the direct typed implementation in {!Uml2fsm}.

    Rules:
    - [chart2fsm]: every [Statechart] becomes an [Fsm];
    - [state2state]: every non-pseudo leaf [ChartState] becomes an
      [FsmState] (finality preserved);
    - [transition2transition]: every triggered [ChartTransition]
      becomes an [FsmTransition], resolving endpoints through the
      trace.

    Hierarchical charts are flattened (typed side) before the rules
    run, keeping the rule set first-order. *)

val rules : Umlfront_transform.Engine.rule list

val run : Umlfront_uml.Model.t -> (string * Umlfront_fsm.Fsm.t) list
(** Transform every statechart of the model through the generic engine
    and read the result back.  Agrees with {!Uml2fsm.run} (tested). *)

val run_traced :
  Umlfront_uml.Model.t ->
  (string * Umlfront_fsm.Fsm.t) list * Umlfront_metamodel.Trace.t
