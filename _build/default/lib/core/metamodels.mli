(** Explicit metamodels and dynamic-model bridges.

    The paper's mapping flow (Fig. 2) is metamodel-driven: the UML
    model is captured against a source metamodel, the transformation
    produces an XML document conforming to the {e Simulink (CAAM)
    meta-model} (the E-core artifact between steps 2 and 4), and rule
    technologies like smartQVT/ATL operate on those metamodels.

    This module declares the three metamodels as
    {!Umlfront_metamodel.Meta} values and converts between the typed
    OCaml representations and dynamic {!Umlfront_metamodel.Mmodel}
    instances, so the generic {!Umlfront_transform.Engine} and the
    E-core serialization can be used on real flow artifacts. *)

module Meta = Umlfront_metamodel.Meta
module Mm = Umlfront_metamodel.Mmodel

val uml_mm : Meta.t
(** Source metamodel: classes/operations/parameters, objects,
    deployment, sequence diagrams, statecharts. *)

val simulink_mm : Meta.t
(** Target metamodel of the dataflow branch: Model / System / Block /
    Param / Line, with CAAM annotations carried as block params. *)

val fsm_mm : Meta.t
(** Target metamodel of the control branch: Fsm / State / Transition /
    Action. *)

(** {1 UML bridges} *)

val uml_to_mmodel : Umlfront_uml.Model.t -> Mm.t

(** {1 Simulink bridges} *)

val simulink_to_mmodel : Umlfront_simulink.Model.t -> Mm.t

val mmodel_to_simulink : Mm.t -> Umlfront_simulink.Model.t
(** Inverse of {!simulink_to_mmodel}.
    @raise Invalid_argument on a non-conforming model. *)

(** {1 FSM bridges} *)

val fsm_to_mmodel : Umlfront_fsm.Fsm.t -> Mm.t
val mmodel_to_fsms : Mm.t -> Umlfront_fsm.Fsm.t list
