module Meta = Umlfront_metamodel.Meta
module Mm = Umlfront_metamodel.Mmodel
module U = Umlfront_uml
module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Smodel = Umlfront_simulink.Model
module Fsm = Umlfront_fsm.Fsm

let uml_mm =
  Meta.create ~name:"uml"
    [
      Meta.metaclass "Model"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:
          [
            Meta.reference ~containment:true ~many:true "classes" "Class";
            Meta.reference ~containment:true ~many:true "objects" "Object";
            Meta.reference ~containment:true ~many:true "deployments" "Deployment";
            Meta.reference ~containment:true ~many:true "sequences" "SequenceDiagram";
            Meta.reference ~containment:true ~many:true "statecharts" "Statechart";
          ];
      Meta.metaclass "Class"
        ~attributes:
          [
            Meta.attribute ~required:true "name" Meta.T_string;
            Meta.attribute "kind"
              (Meta.T_enum [ "thread"; "passive"; "platform"; "io" ]);
            Meta.attribute "stereotypes" Meta.T_string;
          ]
        ~references:[ Meta.reference ~containment:true ~many:true "operations" "Operation" ];
      Meta.metaclass "Operation"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:[ Meta.reference ~containment:true ~many:true "parameters" "Parameter" ];
      Meta.metaclass "Parameter"
        ~attributes:
          [
            Meta.attribute ~required:true "name" Meta.T_string;
            Meta.attribute "direction" (Meta.T_enum [ "in"; "out"; "inout"; "return" ]);
            Meta.attribute "type" Meta.T_string;
          ];
      Meta.metaclass "Object"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:[ Meta.reference "class" "Class" ];
      Meta.metaclass "Deployment"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:
          [
            Meta.reference ~containment:true ~many:true "nodes" "ProcessorNode";
            Meta.reference ~containment:true ~many:true "allocations" "Allocation";
          ];
      Meta.metaclass "ProcessorNode"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ];
      Meta.metaclass "Allocation"
        ~references:
          [ Meta.reference "thread" "Object"; Meta.reference "node" "ProcessorNode" ];
      Meta.metaclass "SequenceDiagram"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:[ Meta.reference ~containment:true ~many:true "messages" "Message" ];
      Meta.metaclass "Message"
        ~attributes:
          [
            Meta.attribute ~required:true "operation" Meta.T_string;
            Meta.attribute "result" Meta.T_string;
            Meta.attribute "resultType" Meta.T_string;
          ]
        ~references:
          [
            Meta.reference "from" "Object";
            Meta.reference "to" "Object";
            Meta.reference ~containment:true ~many:true "arguments" "Argument";
          ];
      Meta.metaclass "Argument"
        ~attributes:
          [
            Meta.attribute ~required:true "name" Meta.T_string;
            Meta.attribute "type" Meta.T_string;
          ];
      Meta.metaclass "Statechart"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:
          [
            Meta.reference ~containment:true ~many:true "states" "ChartState";
            Meta.reference ~containment:true ~many:true "transitions" "ChartTransition";
          ];
      Meta.metaclass "ChartState"
        ~attributes:
          [
            Meta.attribute ~required:true "name" Meta.T_string;
            Meta.attribute "kind"
              (Meta.T_enum [ "simple"; "initial"; "final"; "composite" ]);
            Meta.attribute "entry" Meta.T_string;
            Meta.attribute "exit" Meta.T_string;
          ]
        ~references:[ Meta.reference ~containment:true ~many:true "substates" "ChartState" ];
      Meta.metaclass "ChartTransition"
        ~attributes:
          [
            Meta.attribute "trigger" Meta.T_string;
            Meta.attribute "guard" Meta.T_string;
            Meta.attribute "effect" Meta.T_string;
          ]
        ~references:
          [ Meta.reference "source" "ChartState"; Meta.reference "target" "ChartState" ];
    ]

let simulink_mm =
  Meta.create ~name:"simulink"
    [
      Meta.metaclass "Model"
        ~attributes:
          [
            Meta.attribute ~required:true "name" Meta.T_string;
            Meta.attribute "solver" Meta.T_string;
            Meta.attribute "stopTime" Meta.T_float;
          ]
        ~references:[ Meta.reference ~containment:true "root" "System" ];
      Meta.metaclass "System"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:
          [
            Meta.reference ~containment:true ~many:true "blocks" "Block";
            Meta.reference ~containment:true ~many:true "lines" "Line";
          ];
      Meta.metaclass "Block"
        ~attributes:
          [
            Meta.attribute ~required:true "name" Meta.T_string;
            Meta.attribute ~required:true "blockType" Meta.T_string;
          ]
        ~references:
          [
            Meta.reference ~containment:true ~many:true "params" "Param";
            Meta.reference ~containment:true "system" "System";
          ];
      Meta.metaclass "Param"
        ~attributes:
          [
            Meta.attribute ~required:true "key" Meta.T_string;
            Meta.attribute "stringValue" Meta.T_string;
            Meta.attribute "intValue" Meta.T_int;
            Meta.attribute "floatValue" Meta.T_float;
            Meta.attribute "boolValue" Meta.T_bool;
          ];
      Meta.metaclass "Line"
        ~attributes:
          [
            Meta.attribute ~required:true "srcBlock" Meta.T_string;
            Meta.attribute ~required:true "srcPort" Meta.T_int;
            Meta.attribute ~required:true "dstBlock" Meta.T_string;
            Meta.attribute ~required:true "dstPort" Meta.T_int;
          ];
    ]

let fsm_mm =
  Meta.create ~name:"fsm"
    [
      Meta.metaclass "Fsm"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:
          [
            Meta.reference ~containment:true ~many:true "states" "FsmState";
            Meta.reference ~containment:true ~many:true "transitions" "FsmTransition";
            Meta.reference "initial" "FsmState";
          ];
      Meta.metaclass "FsmState"
        ~attributes:
          [
            Meta.attribute ~required:true "name" Meta.T_string;
            Meta.attribute "final" Meta.T_bool;
          ];
      Meta.metaclass "FsmTransition"
        ~attributes:
          [
            Meta.attribute ~required:true "event" Meta.T_string;
            Meta.attribute "guard" Meta.T_string;
            Meta.attribute "actions" Meta.T_string;  (* ';'-separated *)
          ]
        ~references:
          [ Meta.reference "source" "FsmState"; Meta.reference "target" "FsmState" ];
    ]

(* ------------------------------------------------------------------ *)
(* UML bridge (one direction: the flow consumes UML, never emits it)  *)
(* ------------------------------------------------------------------ *)

let uml_to_mmodel (uml : U.Model.t) =
  let m = Mm.create uml_mm in
  let model = Mm.new_object m "Model" in
  Mm.set_string m model "name" uml.U.Model.model_name;
  let class_obj = Hashtbl.create 8 in
  List.iter
    (fun (c : U.Classifier.cls) ->
      let o = Mm.new_object m "Class" in
      Mm.set_string m o "name" c.U.Classifier.cls_name;
      Mm.set_string m o "kind" (U.Classifier.kind_to_string c.U.Classifier.cls_kind);
      Mm.set_string m o "stereotypes"
        (String.concat ","
           (List.map U.Stereotype.to_string c.U.Classifier.cls_stereotypes));
      List.iter
        (fun (op : U.Operation.t) ->
          let oo = Mm.new_object m "Operation" in
          Mm.set_string m oo "name" op.U.Operation.op_name;
          List.iter
            (fun (p : U.Operation.parameter) ->
              let po = Mm.new_object m "Parameter" in
              Mm.set_string m po "name" p.U.Operation.param_name;
              Mm.set_string m po "direction"
                (U.Operation.direction_to_string p.U.Operation.param_dir);
              Mm.set_string m po "type" (U.Datatype.to_string p.U.Operation.param_type);
              Mm.add_ref m ~src:oo "parameters" ~dst:po)
            op.U.Operation.op_params;
          Mm.add_ref m ~src:o "operations" ~dst:oo)
        c.U.Classifier.cls_operations;
      Hashtbl.replace class_obj c.U.Classifier.cls_name o;
      Mm.add_ref m ~src:model "classes" ~dst:o)
    uml.U.Model.classes;
  let instance_obj = Hashtbl.create 8 in
  List.iter
    (fun (i : U.Classifier.instance) ->
      let o = Mm.new_object m "Object" in
      Mm.set_string m o "name" i.U.Classifier.inst_name;
      (match Hashtbl.find_opt class_obj i.U.Classifier.inst_class with
      | Some c -> Mm.add_ref m ~src:o "class" ~dst:c
      | None -> ());
      Hashtbl.replace instance_obj i.U.Classifier.inst_name o;
      Mm.add_ref m ~src:model "objects" ~dst:o)
    uml.U.Model.instances;
  List.iter
    (fun (d : U.Deployment.t) ->
      let o = Mm.new_object m "Deployment" in
      Mm.set_string m o "name" d.U.Deployment.dep_name;
      let node_obj = Hashtbl.create 4 in
      List.iter
        (fun (n : U.Deployment.node) ->
          let no = Mm.new_object m "ProcessorNode" in
          Mm.set_string m no "name" n.U.Deployment.node_name;
          Hashtbl.replace node_obj n.U.Deployment.node_name no;
          Mm.add_ref m ~src:o "nodes" ~dst:no)
        d.U.Deployment.dep_nodes;
      List.iter
        (fun (thread, node) ->
          let ao = Mm.new_object m "Allocation" in
          (match Hashtbl.find_opt instance_obj thread with
          | Some t -> Mm.add_ref m ~src:ao "thread" ~dst:t
          | None -> ());
          (match Hashtbl.find_opt node_obj node with
          | Some n -> Mm.add_ref m ~src:ao "node" ~dst:n
          | None -> ());
          Mm.add_ref m ~src:o "allocations" ~dst:ao)
        d.U.Deployment.dep_allocation;
      Mm.add_ref m ~src:model "deployments" ~dst:o)
    uml.U.Model.deployments;
  List.iter
    (fun (sd : U.Sequence.t) ->
      let o = Mm.new_object m "SequenceDiagram" in
      Mm.set_string m o "name" sd.U.Sequence.sd_name;
      List.iter
        (fun (msg : U.Sequence.message) ->
          let mo = Mm.new_object m "Message" in
          Mm.set_string m mo "operation" msg.U.Sequence.msg_operation;
          (match msg.U.Sequence.msg_result with
          | Some r ->
              Mm.set_string m mo "result" r.U.Sequence.arg_name;
              Mm.set_string m mo "resultType" (U.Datatype.to_string r.U.Sequence.arg_type)
          | None -> ());
          (match Hashtbl.find_opt instance_obj msg.U.Sequence.msg_from with
          | Some f -> Mm.add_ref m ~src:mo "from" ~dst:f
          | None -> ());
          (match Hashtbl.find_opt instance_obj msg.U.Sequence.msg_to with
          | Some t -> Mm.add_ref m ~src:mo "to" ~dst:t
          | None -> ());
          List.iter
            (fun (a : U.Sequence.arg) ->
              let ao = Mm.new_object m "Argument" in
              Mm.set_string m ao "name" a.U.Sequence.arg_name;
              Mm.set_string m ao "type" (U.Datatype.to_string a.U.Sequence.arg_type);
              Mm.add_ref m ~src:mo "arguments" ~dst:ao)
            msg.U.Sequence.msg_args;
          Mm.add_ref m ~src:o "messages" ~dst:mo)
        sd.U.Sequence.sd_messages;
      Mm.add_ref m ~src:model "sequences" ~dst:o)
    uml.U.Model.sequences;
  List.iter
    (fun (sc : U.Statechart.t) ->
      let o = Mm.new_object m "Statechart" in
      Mm.set_string m o "name" sc.U.Statechart.sc_name;
      let state_obj = Hashtbl.create 8 in
      let kind_string = function
        | U.Statechart.Simple -> "simple"
        | U.Statechart.Initial -> "initial"
        | U.Statechart.Final -> "final"
        | U.Statechart.Composite -> "composite"
      in
      let rec add_state parent (s : U.Statechart.state) =
        let so = Mm.new_object m "ChartState" in
        Mm.set_string m so "name" s.U.Statechart.st_name;
        Mm.set_string m so "kind" (kind_string s.U.Statechart.st_kind);
        Option.iter (Mm.set_string m so "entry") s.U.Statechart.st_entry;
        Option.iter (Mm.set_string m so "exit") s.U.Statechart.st_exit;
        Hashtbl.replace state_obj s.U.Statechart.st_name so;
        (match parent with
        | Some p -> Mm.add_ref m ~src:p "substates" ~dst:so
        | None -> Mm.add_ref m ~src:o "states" ~dst:so);
        List.iter (add_state (Some so)) s.U.Statechart.st_children
      in
      List.iter (add_state None) sc.U.Statechart.sc_states;
      List.iter
        (fun (tr : U.Statechart.transition) ->
          let to_ = Mm.new_object m "ChartTransition" in
          Option.iter (Mm.set_string m to_ "trigger") tr.U.Statechart.tr_trigger;
          Option.iter (Mm.set_string m to_ "guard") tr.U.Statechart.tr_guard;
          Option.iter (Mm.set_string m to_ "effect") tr.U.Statechart.tr_effect;
          (match Hashtbl.find_opt state_obj tr.U.Statechart.tr_source with
          | Some s -> Mm.add_ref m ~src:to_ "source" ~dst:s
          | None -> ());
          (match Hashtbl.find_opt state_obj tr.U.Statechart.tr_target with
          | Some s -> Mm.add_ref m ~src:to_ "target" ~dst:s
          | None -> ());
          Mm.add_ref m ~src:o "transitions" ~dst:to_)
        sc.U.Statechart.sc_transitions;
      Mm.add_ref m ~src:model "statecharts" ~dst:o)
    uml.U.Model.statecharts;
  m

(* ------------------------------------------------------------------ *)
(* Simulink bridge (both directions: the flow's E-core artifact)      *)
(* ------------------------------------------------------------------ *)

let param_to_object m key value =
  let po = Mm.new_object m "Param" in
  Mm.set_string m po "key" key;
  (match value with
  | B.P_string s -> Mm.set_string m po "stringValue" s
  | B.P_int i -> Mm.set_int m po "intValue" i
  | B.P_float f -> Mm.set_float m po "floatValue" f
  | B.P_bool b -> Mm.set_bool m po "boolValue" b);
  po

let simulink_to_mmodel (sm : Smodel.t) =
  let m = Mm.create simulink_mm in
  let rec system_to_object (sys : S.t) =
    let so = Mm.new_object m "System" in
    Mm.set_string m so "name" sys.S.sys_name;
    List.iter
      (fun (b : S.block) ->
        let bo = Mm.new_object m "Block" in
        Mm.set_string m bo "name" b.S.blk_name;
        Mm.set_string m bo "blockType" (B.to_string b.S.blk_type);
        List.iter
          (fun (key, value) -> Mm.add_ref m ~src:bo "params" ~dst:(param_to_object m key value))
          b.S.blk_params;
        (match b.S.blk_system with
        | Some nested -> Mm.add_ref m ~src:bo "system" ~dst:(system_to_object nested)
        | None -> ());
        Mm.add_ref m ~src:so "blocks" ~dst:bo)
      sys.S.sys_blocks;
    List.iter
      (fun (l : S.line) ->
        let lo = Mm.new_object m "Line" in
        Mm.set_string m lo "srcBlock" l.S.src.S.block;
        Mm.set_int m lo "srcPort" l.S.src.S.port;
        Mm.set_string m lo "dstBlock" l.S.dst.S.block;
        Mm.set_int m lo "dstPort" l.S.dst.S.port;
        Mm.add_ref m ~src:so "lines" ~dst:lo)
      sys.S.sys_lines;
    so
  in
  let mo = Mm.new_object m "Model" in
  Mm.set_string m mo "name" sm.Smodel.model_name;
  Mm.set_string m mo "solver" sm.Smodel.solver;
  Mm.set_float m mo "stopTime" sm.Smodel.stop_time;
  Mm.add_ref m ~src:mo "root" ~dst:(system_to_object sm.Smodel.root);
  m

let object_to_param m po =
  let key =
    match Mm.get_string po "key" with
    | Some k -> k
    | None -> invalid_arg "metamodels: Param without key"
  in
  let value =
    match
      ( Mm.get_string po "stringValue",
        Mm.get_int po "intValue",
        Mm.get_float po "floatValue",
        Mm.get_bool po "boolValue" )
    with
    | Some s, _, _, _ -> B.P_string s
    | None, Some i, _, _ -> B.P_int i
    | None, None, Some f, _ -> B.P_float f
    | None, None, None, Some b -> B.P_bool b
    | None, None, None, None -> invalid_arg "metamodels: Param without value"
  in
  ignore m;
  (key, value)

let mmodel_to_simulink m =
  let rec object_to_system so =
    let name =
      match Mm.get_string so "name" with
      | Some n -> n
      | None -> invalid_arg "metamodels: System without name"
    in
    let sys = S.empty name in
    let sys =
      List.fold_left
        (fun sys bo ->
          let bname = Option.value (Mm.get_string bo "name") ~default:"?" in
          let ty = B.of_string (Option.value (Mm.get_string bo "blockType") ~default:"") in
          let params = List.map (object_to_param m) (Mm.refs m bo "params") in
          match Mm.ref1 m bo "system" with
          | Some nested -> S.add_block ~params ~system:(object_to_system nested) sys ty bname
          | None -> S.add_block ~params sys ty bname)
        sys (Mm.refs m so "blocks")
    in
    List.fold_left
      (fun sys lo ->
        let get_s k = Option.value (Mm.get_string lo k) ~default:"?" in
        let get_i k = Option.value (Mm.get_int lo k) ~default:1 in
        S.add_line sys
          ~src:{ S.block = get_s "srcBlock"; S.port = get_i "srcPort" }
          ~dst:{ S.block = get_s "dstBlock"; S.port = get_i "dstPort" })
      sys (Mm.refs m so "lines")
  in
  match Mm.all_of_class m "Model" with
  | [ mo ] ->
      let root =
        match Mm.ref1 m mo "root" with
        | Some so -> object_to_system so
        | None -> invalid_arg "metamodels: Model without root system"
      in
      Smodel.make
        ~solver:(Option.value (Mm.get_string mo "solver") ~default:"FixedStepDiscrete")
        ~stop_time:(Option.value (Mm.get_float mo "stopTime") ~default:10.0)
        ~name:(Option.value (Mm.get_string mo "name") ~default:"model")
        root
  | _ -> invalid_arg "metamodels: expected exactly one Model object"

(* ------------------------------------------------------------------ *)
(* FSM bridge                                                         *)
(* ------------------------------------------------------------------ *)

let fsm_to_mmodel (fsm : Fsm.t) =
  let m = Mm.create fsm_mm in
  let fo = Mm.new_object m "Fsm" in
  Mm.set_string m fo "name" fsm.Fsm.fsm_name;
  let state_obj = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let so = Mm.new_object m "FsmState" in
      Mm.set_string m so "name" s;
      Mm.set_bool m so "final" (List.mem s fsm.Fsm.finals);
      Hashtbl.replace state_obj s so;
      Mm.add_ref m ~src:fo "states" ~dst:so)
    fsm.Fsm.states;
  (match Hashtbl.find_opt state_obj fsm.Fsm.initial with
  | Some so -> Mm.add_ref m ~src:fo "initial" ~dst:so
  | None -> ());
  List.iter
    (fun (tr : Fsm.transition) ->
      let to_ = Mm.new_object m "FsmTransition" in
      Mm.set_string m to_ "event" tr.Fsm.t_event;
      Option.iter (Mm.set_string m to_ "guard") tr.Fsm.t_guard;
      if tr.Fsm.t_actions <> [] then
        Mm.set_string m to_ "actions" (String.concat ";" tr.Fsm.t_actions);
      (match Hashtbl.find_opt state_obj tr.Fsm.t_src with
      | Some s -> Mm.add_ref m ~src:to_ "source" ~dst:s
      | None -> ());
      (match Hashtbl.find_opt state_obj tr.Fsm.t_dst with
      | Some s -> Mm.add_ref m ~src:to_ "target" ~dst:s
      | None -> ());
      Mm.add_ref m ~src:fo "transitions" ~dst:to_)
    fsm.Fsm.transitions;
  m

let mmodel_to_fsms m =
  Mm.all_of_class m "Fsm"
  |> List.map (fun fo ->
         let state_name so = Option.value (Mm.get_string so "name") ~default:"?" in
         let states = Mm.refs m fo "states" in
         let finals =
           states
           |> List.filter (fun so -> Mm.get_bool so "final" = Some true)
           |> List.map state_name
         in
         let transitions =
           Mm.refs m fo "transitions"
           |> List.filter_map (fun to_ ->
                  match (Mm.ref1 m to_ "source", Mm.ref1 m to_ "target") with
                  | Some s, Some t ->
                      Some
                        {
                          Fsm.t_src = state_name s;
                          t_dst = state_name t;
                          t_event = Option.value (Mm.get_string to_ "event") ~default:"?";
                          t_guard = Mm.get_string to_ "guard";
                          t_actions =
                            (match Mm.get_string to_ "actions" with
                            | Some a -> String.split_on_char ';' a
                            | None -> []);
                        }
                  | _, _ -> None)
         in
         let initial =
           match Mm.ref1 m fo "initial" with
           | Some so -> state_name so
           | None -> (
               match states with
               | s :: _ -> state_name s
               | [] -> invalid_arg "metamodels: Fsm without states")
         in
         Fsm.make ~finals
           ~name:(Option.value (Mm.get_string fo "name") ~default:"fsm")
           ~initial ~states:(List.map state_name states) transitions)
