(** End-to-end consistency audit of a flow run: cross-checks the UML
    source, the trace links and the generated CAAM against each other
    (the model-driven engineering discipline of Fig. 2 — every source
    element accounted for, every trace target real). *)

type finding = { subject : string; problem : string }

val audit : Umlfront_uml.Model.t -> Flow.output -> finding list
(** Empty means consistent.  Checked:
    - structural validation of the CAAM and the CAAM-role checker;
    - every thread has a [thread_to_thread_ss] trace link whose target
      block path exists;
    - every functional message (thread → passive/Platform) has a
      [message_to_block] link to an existing block;
    - every [<<IO>>] message's port link names an existing top-level
      port block;
    - the generated model admits a firing order (deadlock-free);
    - allocation and CAAM agree on the thread-to-CPU placement. *)

val audit_report : Umlfront_uml.Model.t -> Flow.output -> string
val pp_finding : Format.formatter -> finding -> unit
