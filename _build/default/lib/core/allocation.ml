module U = Umlfront_uml
module G = Umlfront_taskgraph.Graph
module Algo = Umlfront_taskgraph.Algo
module Clustering = Umlfront_taskgraph.Clustering
module Lc = Umlfront_taskgraph.Linear_clustering

let task_graph (uml : U.Model.t) =
  let g = G.create () in
  let threads = U.Model.threads uml in
  let work = Hashtbl.create 8 in
  List.iter (fun th -> Hashtbl.replace work th 0) threads;
  let comm = Hashtbl.create 16 in
  let add_comm src dst bytes =
    let key = (src, dst) in
    Hashtbl.replace comm key (bytes + Option.value (Hashtbl.find_opt comm key) ~default:0)
  in
  List.iter
    (fun (sd : U.Sequence.t) ->
      List.iter
        (fun (m : U.Sequence.message) ->
          let caller = m.U.Sequence.msg_from and callee = m.U.Sequence.msg_to in
          match
            (U.Model.kind_of_instance uml caller, U.Model.kind_of_instance uml callee)
          with
          | Some U.Classifier.Thread, Some U.Classifier.Thread ->
              let bytes = max 1 (U.Sequence.transferred_bytes m) in
              if U.Sequence.is_send m then add_comm caller callee bytes
              else if U.Sequence.is_receive m then add_comm callee caller bytes
          | Some U.Classifier.Thread, Some _ ->
              Hashtbl.replace work caller (1 + Option.value (Hashtbl.find_opt work caller) ~default:0)
          | _, _ -> ())
        sd.U.Sequence.sd_messages)
    (U.Model.behaviours uml);
  List.iter
    (fun th ->
      G.add_node g
        ~weight:(float_of_int (max 1 (Option.value (Hashtbl.find_opt work th) ~default:0)))
        th)
    threads;
  Hashtbl.iter (fun (src, dst) bytes -> G.add_edge g ~weight:(float_of_int bytes) src dst) comm;
  g

let acyclic_view g =
  if Algo.is_acyclic g then g
  else
    let back = Algo.all_back_edges g in
    G.of_lists
      ~nodes:(List.map (fun id -> (id, G.node_weight g id)) (G.nodes g))
      ~edges:
        (List.filter (fun (s, d, _) -> not (List.mem (s, d) back)) (G.edges g))

type strategy = Linear | Bounded of int

let infer ?(strategy = Linear) ?(cpu_prefix = "CPU") (uml : U.Model.t) =
  let g = acyclic_view (task_graph uml) in
  let clustering =
    match strategy with
    | Linear -> Lc.run g
    | Bounded n -> Lc.run_bounded ~max_clusters:n g
  in
  Clustering.groups clustering
  |> List.concat_map (fun group ->
         let idx = Clustering.cluster_of clustering (List.hd group) in
         List.map (fun th -> (th, Printf.sprintf "%s%d" cpu_prefix idx)) group)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let from_deployment (uml : U.Model.t) =
  Option.map
    (fun (d : U.Deployment.t) -> d.U.Deployment.dep_allocation)
    (U.Model.deployment uml)
