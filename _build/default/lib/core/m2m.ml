module Engine = Umlfront_transform.Engine
module Mm = Umlfront_metamodel.Mmodel
module Trace = Umlfront_metamodel.Trace
module U = Umlfront_uml
module Fsm = Umlfront_fsm.Fsm
module Flatten = Umlfront_fsm.Flatten

(* Source objects are instances of Metamodels.uml_mm describing a
   *flat* statechart (every state Simple/Initial/Final, no nesting). *)

let is_pseudo obj = Mm.get_string obj "kind" = Some "initial"

let chart2fsm =
  Engine.rule ~name:"chart2fsm" ~source:"Statechart"
    (fun ctx obj ->
      let fsm = Mm.new_object ctx.Engine.target "Fsm" in
      Mm.set_string ctx.Engine.target fsm "name"
        (Option.value (Mm.get_string obj "name") ~default:"fsm");
      [ fsm ])
    ~bind:(fun ctx obj targets ->
      match targets with
      | [ fsm ] ->
          let states = Mm.refs ctx.Engine.source obj "states" in
          List.iter
            (fun s ->
              match Engine.resolve ~rule:"state2state" ctx s with
              | Some fs -> Mm.add_ref ctx.Engine.target ~src:fsm "states" ~dst:fs
              | None -> ())
            states;
          List.iter
            (fun t ->
              match Engine.resolve ~rule:"transition2transition" ctx t with
              | Some ft -> Mm.add_ref ctx.Engine.target ~src:fsm "transitions" ~dst:ft
              | None -> ())
            (Mm.refs ctx.Engine.source obj "transitions");
          (* Initial state: target of the completion transition leaving
             the initial pseudo-state. *)
          let initial_leaf =
            Mm.refs ctx.Engine.source obj "transitions"
            |> List.find_map (fun t ->
                   match Mm.ref1 ctx.Engine.source t "source" with
                   | Some s when is_pseudo s -> Mm.ref1 ctx.Engine.source t "target"
                   | Some _ | None -> None)
          in
          (match Option.map (Engine.resolve ~rule:"state2state" ctx) initial_leaf with
          | Some (Some fs) -> Mm.add_ref ctx.Engine.target ~src:fsm "initial" ~dst:fs
          | Some None | None -> (
              (* No pseudo-state: first real state is initial. *)
              match
                List.find_map (Engine.resolve ~rule:"state2state" ctx) states
              with
              | Some fs -> Mm.add_ref ctx.Engine.target ~src:fsm "initial" ~dst:fs
              | None -> ()))
      | _ -> ())

let state2state =
  Engine.rule ~name:"state2state" ~source:"ChartState"
    ~guard:(fun _ obj -> not (is_pseudo obj))
    (fun ctx obj ->
      let fs = Mm.new_object ctx.Engine.target "FsmState" in
      Mm.set_string ctx.Engine.target fs "name"
        (Option.value (Mm.get_string obj "name") ~default:"?");
      Mm.set_bool ctx.Engine.target fs "final" (Mm.get_string obj "kind" = Some "final");
      [ fs ])

let transition2transition =
  Engine.rule ~name:"transition2transition" ~source:"ChartTransition"
    ~guard:(fun ctx obj ->
      (* Completion transitions from the initial pseudo-state carry no
         trigger and only select the initial state. *)
      match Mm.ref1 ctx.Engine.source obj "source" with
      | Some s -> not (is_pseudo s)
      | None -> false)
    (fun ctx obj ->
      let ft = Mm.new_object ctx.Engine.target "FsmTransition" in
      Mm.set_string ctx.Engine.target ft "event"
        (Option.value (Mm.get_string obj "trigger") ~default:"completion");
      Option.iter (Mm.set_string ctx.Engine.target ft "guard") (Mm.get_string obj "guard");
      Option.iter
        (Mm.set_string ctx.Engine.target ft "actions")
        (Mm.get_string obj "effect");
      [ ft ])
    ~bind:(fun ctx obj targets ->
      match targets with
      | [ ft ] ->
          let wire role =
            match Mm.ref1 ctx.Engine.source obj role with
            | Some endpoint -> (
                match Engine.resolve ~rule:"state2state" ctx endpoint with
                | Some fs -> Mm.add_ref ctx.Engine.target ~src:ft role ~dst:fs
                | None -> ())
            | None -> ()
          in
          wire "source";
          wire "target"
      | _ -> ())

let rules = [ chart2fsm; state2state; transition2transition ]

(* Pre-flatten a statechart on the typed side so the rules stay
   first-order, then re-express it as a flat chart. *)
let flat_chart_of (sc : U.Statechart.t) =
  let fsm = Flatten.run sc in
  let states =
    U.Statechart.state ~kind:U.Statechart.Initial "__initial"
    :: List.map
         (fun s ->
           U.Statechart.state
             ~kind:(if List.mem s fsm.Fsm.finals then U.Statechart.Final else U.Statechart.Simple)
             s)
         fsm.Fsm.states
  in
  let transitions =
    U.Statechart.transition ~source:"__initial" ~target:fsm.Fsm.initial ()
    :: List.map
         (fun (tr : Fsm.transition) ->
           U.Statechart.transition ~trigger:tr.Fsm.t_event ?guard:tr.Fsm.t_guard
             ?effect:
               (match tr.Fsm.t_actions with
               | [] -> None
               | actions -> Some (String.concat ";" actions))
             ~source:tr.Fsm.t_src ~target:tr.Fsm.t_dst ())
         fsm.Fsm.transitions
  in
  U.Statechart.make sc.U.Statechart.sc_name states transitions

let run_traced (uml : U.Model.t) =
  let flat =
    { uml with U.Model.statecharts = List.map flat_chart_of uml.U.Model.statecharts }
  in
  let source = Metamodels.uml_to_mmodel flat in
  let result =
    Engine.run ~rules ~source ~target_metamodel:Metamodels.fsm_mm
  in
  let fsms =
    Metamodels.mmodel_to_fsms result.Engine.output
    |> List.map (fun f -> (f.Fsm.fsm_name, f))
  in
  (fsms, result.Engine.links)

let run uml = fst (run_traced uml)
