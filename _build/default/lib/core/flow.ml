let log = Logs.Src.create "umlfront.flow" ~doc:"UML front-end design flow"

module Log = (val Logs.src_log log : Logs.LOG)

type allocation_strategy =
  | Use_deployment
  | Prefer_deployment
  | Infer_linear
  | Infer_bounded of int

type output = {
  caam : Umlfront_simulink.Model.t;
  mdl : string;
  allocation : (string * string) list;
  trace : Umlfront_metamodel.Trace.t;
  intra_channels : int;
  inter_channels : int;
  delays_inserted : int;
  broken_cycles : string list list;
  fsms : (string * Uml2fsm.generated) list;
}

let choose_allocation strategy uml =
  match strategy with
  | Use_deployment -> (
      match Allocation.from_deployment uml with
      | Some a -> a
      | None -> invalid_arg "flow: no deployment diagram in the model")
  | Prefer_deployment -> (
      match Allocation.from_deployment uml with
      | Some a -> a
      | None -> Allocation.infer uml)
  | Infer_linear -> Allocation.infer uml
  | Infer_bounded n -> Allocation.infer ~strategy:(Allocation.Bounded n) uml

let run ?(style = Mapping.Caam) ?(strategy = Prefer_deployment) uml =
  Log.info (fun m ->
      m "flow start: model %s, %d threads" uml.Umlfront_uml.Model.model_name
        (List.length (Umlfront_uml.Model.threads uml)));
  let allocation = choose_allocation strategy uml in
  Log.debug (fun m ->
      m "allocation: %s"
        (String.concat ", " (List.map (fun (t, c) -> t ^ "->" ^ c) allocation)));
  let mapped = Mapping.run ~style ~allocation uml in
  let channelized =
    match style with
    | Mapping.Caam -> Channel_inference.run mapped.Mapping.model
    | Mapping.Flat ->
        {
          Channel_inference.model = mapped.Mapping.model;
          intra_channels = 0;
          inter_channels = 0;
        }
  in
  Log.debug (fun m ->
      m "channels: %d intra, %d inter" channelized.Channel_inference.intra_channels
        channelized.Channel_inference.inter_channels);
  let barriered = Loop_breaker.run channelized.Channel_inference.model in
  if barriered.Loop_breaker.delays_inserted > 0 then
    Log.info (fun m ->
        m "inserted %d temporal barrier(s)" barriered.Loop_breaker.delays_inserted);
  let caam = Umlfront_simulink.Layout.run barriered.Loop_breaker.model in
  Log.info (fun m ->
      m "flow done: %d blocks, %d lines"
        (Umlfront_simulink.System.total_blocks caam.Umlfront_simulink.Model.root)
        (Umlfront_simulink.System.total_lines caam.Umlfront_simulink.Model.root));
  {
    caam;
    mdl = Umlfront_simulink.Mdl_writer.to_string caam;
    allocation;
    trace = mapped.Mapping.trace;
    intra_channels = channelized.Channel_inference.intra_channels;
    inter_channels = channelized.Channel_inference.inter_channels;
    delays_inserted = barriered.Loop_breaker.delays_inserted;
    broken_cycles = barriered.Loop_breaker.broken_cycles;
    fsms = Uml2fsm.run uml;
  }

let ecore_xml output =
  Umlfront_metamodel.Ecore_io.to_string (Metamodels.simulink_to_mmodel output.caam)

let c_code ?rounds output = Umlfront_codegen.Gen_threads.generate ?rounds output.caam

let java_code ?rounds ?class_name output =
  Umlfront_codegen.Gen_java.generate ?rounds ?class_name output.caam
