let single_cluster g = Clustering.of_groups [ Graph.nodes g ]
let one_per_node g = Clustering.singleton_per_node g

let group_by_index assign cpus g =
  let buckets = Array.make cpus [] in
  List.iteri
    (fun i id ->
      let c = assign i id in
      buckets.(c) <- id :: buckets.(c))
    (Graph.nodes g);
  Clustering.of_groups (Array.to_list (Array.map List.rev buckets))

let round_robin ~cpus g =
  if cpus < 1 then invalid_arg "baselines: cpus < 1";
  group_by_index (fun i _ -> i mod cpus) cpus g

let random ~seed ~cpus g =
  if cpus < 1 then invalid_arg "baselines: cpus < 1";
  let state = Random.State.make [| seed |] in
  group_by_index (fun _ _ -> Random.State.int state cpus) cpus g
