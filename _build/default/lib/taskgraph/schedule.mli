(** List scheduling onto a bounded number of processors.

    Clustering (the paper's §4.2.3 allocation) assumes one processor
    per cluster; real platforms fix the processor count.  This module
    provides the classic HLFET heuristic (Highest Level First with
    Estimated Times: ready tasks by descending bottom level, earliest-
    available processor wins) both as a standalone mapper and as a
    post-pass that schedules whole clusters, so clustering quality can
    be compared fairly on a fixed platform. *)

type placement = {
  task : Graph.node_id;
  processor : int;
  start : float;
  finish : float;
}

type t = {
  placements : placement list;  (** in start-time order *)
  makespan : float;
  processor_load : float array;
}

val hlfet : processors:int -> Graph.t -> t
(** Schedule individual tasks: communication cost is charged whenever
    producer and consumer land on different processors.
    @raise Algo.Cycle on a cyclic graph,
    [Invalid_argument] when [processors < 1]. *)

val of_clustering : processors:int -> Graph.t -> Clustering.t -> t
(** Keep each cluster whole: clusters are assigned to processors by
    HLFET over the cluster graph (folding the smallest-load clusters
    together when there are more clusters than processors), then tasks
    run as in {!Clustering.schedule}. *)

val to_clustering : t -> Clustering.t
(** The processor assignment as a clustering (for the quality
    metrics). *)

val pp : Format.formatter -> t -> unit
