(** Synthetic task-graph workloads for benchmarks and property tests. *)

val layered :
  seed:int ->
  layers:int ->
  width:int ->
  edge_probability:float ->
  ccr:float ->
  unit ->
  Graph.t
(** Random layered DAG: [layers] ranks of up to [width] nodes; an edge
    between consecutive-rank nodes appears with [edge_probability]
    (each node keeps at least one predecessor so the graph is
    connected forward).  Node weights are uniform in [1, 10]; edge
    weights are scaled so the overall communication-to-computation
    ratio is about [ccr].  Deterministic in [seed]. *)

val fork_join : seed:int -> branches:int -> depth:int -> ccr:float -> unit -> Graph.t
(** Fork-join shape: a source fans out to [branches] chains of length
    [depth] that rejoin in a sink. *)

val chain : n:int -> Graph.t
(** Straight pipeline of [n] unit-weight tasks with unit-weight edges. *)
