exception Cycle of Graph.node_id list

type mark = White | Grey | Black

let dfs_forest g =
  (* Returns (finish-ordered nodes, back edges). *)
  let marks = Hashtbl.create 32 in
  let mark id = try Hashtbl.find marks id with Not_found -> White in
  let finished = ref [] in
  let back_edges = ref [] in
  let rec visit id =
    Hashtbl.replace marks id Grey;
    List.iter
      (fun next ->
        match mark next with
        | White -> visit next
        | Grey -> back_edges := (id, next) :: !back_edges
        | Black -> ())
      (Graph.succs g id);
    Hashtbl.replace marks id Black;
    finished := id :: !finished
  in
  List.iter (fun id -> if mark id = White then visit id) (Graph.nodes g);
  (!finished, List.rev !back_edges)

let all_back_edges g = snd (dfs_forest g)

let find_cycle g =
  match all_back_edges g with
  | [] -> None
  | (from_node, to_node) :: _ ->
      (* The back edge closes a cycle to_node -> ... -> from_node -> to_node.
         Recover the path to_node ~> from_node with a DFS. *)
      let rec path seen current =
        if String.equal current from_node then Some [ current ]
        else if List.mem current seen then None
        else
          let seen = current :: seen in
          List.fold_left
            (fun acc next ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match path seen next with
                  | Some rest -> Some (current :: rest)
                  | None -> None))
            None (Graph.succs g current)
      in
      (match path [] to_node with
      | Some p -> Some p
      | None -> Some [ from_node ])

let topological_sort g =
  let order, back = dfs_forest g in
  match back with
  | [] -> order
  | _ :: _ -> (
      match find_cycle g with
      | Some c -> raise (Cycle c)
      | None -> raise (Cycle []))

let is_acyclic g = all_back_edges g = []

let sources g = List.filter (fun id -> Graph.preds g id = []) (Graph.nodes g)
let sinks g = List.filter (fun id -> Graph.succs g id = []) (Graph.nodes g)

let top_level g =
  let order = topological_sort g in
  let tl = Hashtbl.create 32 in
  List.iter
    (fun id ->
      let best =
        List.fold_left
          (fun acc p ->
            let via = Hashtbl.find tl p +. Graph.node_weight g p +. Graph.edge_weight g p id in
            Float.max acc via)
          0.0 (Graph.preds g id)
      in
      Hashtbl.replace tl id best)
    order;
  fun id -> Hashtbl.find tl id

let bottom_level g =
  let order = topological_sort g in
  let bl = Hashtbl.create 32 in
  List.iter
    (fun id ->
      let best =
        List.fold_left
          (fun acc s ->
            let via = Graph.edge_weight g id s +. Hashtbl.find bl s in
            Float.max acc via)
          0.0 (Graph.succs g id)
      in
      Hashtbl.replace bl id (best +. Graph.node_weight g id))
    (List.rev order);
  fun id -> Hashtbl.find bl id

let critical_path g =
  let tl = top_level g and bl = bottom_level g in
  match Graph.nodes g with
  | [] -> ([], 0.0)
  | first :: _ ->
      let length = ref (tl first +. bl first) in
      List.iter
        (fun id ->
          let l = tl id +. bl id in
          if l > !length then length := l)
        (Graph.nodes g);
      (* Walk the path greedily from a source achieving the total. *)
      let eps = 1e-9 in
      let on_path id = Float.abs (tl id +. bl id -. !length) < eps in
      let start =
        match List.filter on_path (sources g) with
        | s :: _ -> s
        | [] -> first
      in
      let rec walk id acc =
        let acc = id :: acc in
        let next =
          List.find_opt
            (fun s ->
              on_path s
              && Float.abs (tl s -. (tl id +. Graph.node_weight g id +. Graph.edge_weight g id s))
                 < eps)
            (Graph.succs g id)
        in
        match next with Some s -> walk s acc | None -> List.rev acc
      in
      (walk start [], !length)

let longest_path_between g ~src ~dst =
  (* Longest weighted path src ~> dst in a DAG; None when unreachable. *)
  let order = topological_sort g in
  let dist = Hashtbl.create 32 in
  let pred = Hashtbl.create 32 in
  Hashtbl.replace dist src 0.0;
  List.iter
    (fun id ->
      match Hashtbl.find_opt dist id with
      | None -> ()
      | Some d ->
          List.iter
            (fun s ->
              let via = d +. Graph.node_weight g id +. Graph.edge_weight g id s in
              match Hashtbl.find_opt dist s with
              | Some existing when existing >= via -> ()
              | Some _ | None ->
                  Hashtbl.replace dist s via;
                  Hashtbl.replace pred s id)
            (Graph.succs g id))
    order;
  if not (Hashtbl.mem dist dst) then None
  else
    let rec back id acc =
      if String.equal id src then src :: acc
      else back (Hashtbl.find pred id) (id :: acc)
    in
    Some (back dst [])

let reachable g start =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let rec visit id =
    List.iter
      (fun s ->
        if not (Hashtbl.mem seen s) then (
          Hashtbl.replace seen s ();
          acc := s :: !acc;
          visit s))
      (Graph.succs g id)
  in
  visit start;
  List.rev !acc
