let scale_to_ccr g ccr =
  (* Rescale edge weights so total_comm / total_comp = ccr. *)
  let comp = Clustering.sequential_time g in
  let comm = Graph.total_edge_weight g in
  if comm <= 0.0 then g
  else
    let factor = ccr *. comp /. comm in
    Graph.of_lists
      ~nodes:(List.map (fun id -> (id, Graph.node_weight g id)) (Graph.nodes g))
      ~edges:(List.map (fun (s, d, w) -> (s, d, w *. factor)) (Graph.edges g))

let layered ~seed ~layers ~width ~edge_probability ~ccr () =
  if layers < 1 || width < 1 then invalid_arg "generator: layers/width < 1";
  let state = Random.State.make [| seed |] in
  let g = Graph.create () in
  let name l i = Printf.sprintf "t%d_%d" l i in
  let layer_sizes =
    Array.init layers (fun _ -> 1 + Random.State.int state width)
  in
  Array.iteri
    (fun l size ->
      for i = 0 to size - 1 do
        Graph.add_node g ~weight:(1.0 +. float_of_int (Random.State.int state 10)) (name l i)
      done)
    layer_sizes;
  for l = 1 to layers - 1 do
    for i = 0 to layer_sizes.(l) - 1 do
      let connected = ref false in
      for j = 0 to layer_sizes.(l - 1) - 1 do
        if Random.State.float state 1.0 < edge_probability then (
          Graph.add_edge g ~weight:(1.0 +. Random.State.float state 9.0) (name (l - 1) j)
            (name l i);
          connected := true)
      done;
      if not !connected then
        let j = Random.State.int state layer_sizes.(l - 1) in
        Graph.add_edge g ~weight:(1.0 +. Random.State.float state 9.0) (name (l - 1) j)
          (name l i)
    done
  done;
  scale_to_ccr g ccr

let fork_join ~seed ~branches ~depth ~ccr () =
  if branches < 1 || depth < 1 then invalid_arg "generator: branches/depth < 1";
  let state = Random.State.make [| seed |] in
  let g = Graph.create () in
  let w () = 1.0 +. float_of_int (Random.State.int state 10) in
  Graph.add_node g ~weight:(w ()) "fork";
  Graph.add_node g ~weight:(w ()) "join";
  for b = 0 to branches - 1 do
    let prev = ref "fork" in
    for d = 0 to depth - 1 do
      let id = Printf.sprintf "b%d_%d" b d in
      Graph.add_node g ~weight:(w ()) id;
      Graph.add_edge g ~weight:(1.0 +. Random.State.float state 9.0) !prev id;
      prev := id
    done;
    Graph.add_edge g ~weight:(1.0 +. Random.State.float state 9.0) !prev "join"
  done;
  scale_to_ccr g ccr

let chain ~n =
  let g = Graph.create () in
  for i = 0 to n - 1 do
    Graph.add_node g (Printf.sprintf "t%d" i)
  done;
  for i = 0 to n - 2 do
    Graph.add_edge g (Printf.sprintf "t%d" i) (Printf.sprintf "t%d" (i + 1))
  done;
  g
