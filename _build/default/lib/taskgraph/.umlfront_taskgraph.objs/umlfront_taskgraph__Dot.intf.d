lib/taskgraph/dot.mli: Clustering Graph
