lib/taskgraph/baselines.mli: Clustering Graph
