lib/taskgraph/baselines.ml: Array Clustering Graph List Random
