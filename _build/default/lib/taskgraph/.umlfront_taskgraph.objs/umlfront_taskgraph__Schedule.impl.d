lib/taskgraph/schedule.ml: Algo Array Clustering Float Format Graph Hashtbl List Option
