lib/taskgraph/linear_clustering.ml: Algo Clustering Float Graph Hashtbl List
