lib/taskgraph/dsc.ml: Algo Clustering Float Graph Hashtbl List String
