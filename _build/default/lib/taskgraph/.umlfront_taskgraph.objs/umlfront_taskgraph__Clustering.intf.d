lib/taskgraph/clustering.mli: Format Graph
