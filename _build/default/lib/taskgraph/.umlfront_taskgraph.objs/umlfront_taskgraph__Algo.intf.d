lib/taskgraph/algo.mli: Graph
