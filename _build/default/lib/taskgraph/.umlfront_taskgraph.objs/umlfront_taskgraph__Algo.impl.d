lib/taskgraph/algo.ml: Float Graph Hashtbl List String
