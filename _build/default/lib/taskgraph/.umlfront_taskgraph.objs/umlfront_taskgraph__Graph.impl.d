lib/taskgraph/graph.ml: Format Hashtbl List Printf String
