lib/taskgraph/edge_zeroing.ml: Clustering Float Graph List
