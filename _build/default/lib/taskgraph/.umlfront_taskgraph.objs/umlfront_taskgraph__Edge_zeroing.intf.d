lib/taskgraph/edge_zeroing.mli: Clustering Graph
