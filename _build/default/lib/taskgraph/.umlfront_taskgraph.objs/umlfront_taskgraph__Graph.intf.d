lib/taskgraph/graph.mli: Format
