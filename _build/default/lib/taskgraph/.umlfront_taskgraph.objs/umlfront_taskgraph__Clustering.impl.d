lib/taskgraph/clustering.ml: Algo Float Format Graph Hashtbl List Printf String
