lib/taskgraph/schedule.mli: Clustering Format Graph
