lib/taskgraph/generator.ml: Array Clustering Graph List Printf Random
