lib/taskgraph/dsc.mli: Clustering Graph
