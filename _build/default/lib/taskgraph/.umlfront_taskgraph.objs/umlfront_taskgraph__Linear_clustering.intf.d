lib/taskgraph/linear_clustering.mli: Clustering Graph
