lib/taskgraph/dot.ml: Buffer Clustering Graph List Printf String
