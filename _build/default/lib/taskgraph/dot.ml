let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let edges_of buf g =
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (s, d, w) -> out "  \"%s\" -> \"%s\" [label=\"%.3g\"];\n" (escape s) (escape d) w)
    (Graph.edges g)

let graph g =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph taskgraph {\n  rankdir=TB;\n  node [shape=circle];\n";
  List.iter
    (fun id ->
      out "  \"%s\" [label=\"%s\\n%.3g\"];\n" (escape id) (escape id) (Graph.node_weight g id))
    (Graph.nodes g);
  edges_of buf g;
  out "}\n";
  Buffer.contents buf

let clustered g clustering =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph clustered {\n  rankdir=TB;\n  node [shape=circle];\n";
  List.iteri
    (fun i group ->
      out "  subgraph cluster_%d {\n    label=\"CPU%d\";\n    style=rounded;\n" i i;
      List.iter
        (fun id ->
          out "    \"%s\" [label=\"%s\\n%.3g\"];\n" (escape id) (escape id)
            (Graph.node_weight g id))
        group;
      out "  }\n")
    (Clustering.groups clustering);
  edges_of buf g;
  out "}\n";
  Buffer.contents buf

let save content ~path =
  let oc = open_out path in
  output_string oc content;
  close_out oc
