type placement = {
  task : Graph.node_id;
  processor : int;
  start : float;
  finish : float;
}

type t = {
  placements : placement list;
  makespan : float;
  processor_load : float array;
}

let hlfet ~processors g =
  if processors < 1 then invalid_arg "schedule: processors < 1";
  let blevel = Algo.bottom_level g in
  let finish = Hashtbl.create 32 in
  let proc_of = Hashtbl.create 32 in
  let proc_free = Array.make processors 0.0 in
  let load = Array.make processors 0.0 in
  let placed = Hashtbl.create 32 in
  let placements = ref [] in
  let n = Graph.node_count g in
  (* Raises through bottom_level when the graph is cyclic. *)
  for _ = 1 to n do
    let ready =
      Graph.nodes g
      |> List.filter (fun v ->
             (not (Hashtbl.mem placed v))
             && List.for_all (Hashtbl.mem placed) (Graph.preds g v))
    in
    let task =
      match
        List.sort (fun a b -> Float.compare (blevel b) (blevel a)) ready
      with
      | t :: _ -> t
      | [] -> failwith "schedule: no ready task (cycle?)"
    in
    (* Earliest finish over all processors, communication charged
       across processor boundaries. *)
    let candidate p =
      let data_ready =
        List.fold_left
          (fun acc pred ->
            let comm =
              if Hashtbl.find proc_of pred = p then 0.0 else Graph.edge_weight g pred task
            in
            Float.max acc (Hashtbl.find finish pred +. comm))
          0.0 (Graph.preds g task)
      in
      Float.max proc_free.(p) data_ready
    in
    let best_p = ref 0 and best_start = ref (candidate 0) in
    for p = 1 to processors - 1 do
      let s = candidate p in
      if s < !best_start then (
        best_p := p;
        best_start := s)
    done;
    let p = !best_p in
    let start = !best_start in
    let stop = start +. Graph.node_weight g task in
    proc_free.(p) <- stop;
    load.(p) <- load.(p) +. Graph.node_weight g task;
    Hashtbl.replace finish task stop;
    Hashtbl.replace proc_of task p;
    Hashtbl.replace placed task ();
    placements := { task; processor = p; start; finish = stop } :: !placements
  done;
  let placements =
    List.sort (fun a b -> Float.compare a.start b.start) !placements
  in
  let makespan = List.fold_left (fun acc pl -> Float.max acc pl.finish) 0.0 placements in
  { placements; makespan; processor_load = load }

let fold_clusters ~processors g clustering =
  let rec fold clustering =
    if Clustering.cluster_count clustering <= processors then clustering
    else
      let loads =
        List.mapi
          (fun i group ->
            (i, List.fold_left (fun acc v -> acc +. Graph.node_weight g v) 0.0 group))
          (Clustering.groups clustering)
      in
      match List.sort (fun (_, a) (_, b) -> Float.compare a b) loads with
      | (i, _) :: (j, _) :: _ -> fold (Clustering.merge clustering i j)
      | [ _ ] | [] -> clustering
  in
  fold clustering

let of_clustering ~processors g clustering =
  if processors < 1 then invalid_arg "schedule: processors < 1";
  let clustering = fold_clusters ~processors g clustering in
  (* Each (folded) cluster is one processor; reuse the cluster
     scheduler and renumber densely. *)
  let scheduled = Clustering.schedule g clustering in
  let load = Array.make processors 0.0 in
  let placements =
    List.map
      (fun (s : Clustering.scheduled) ->
        let p = s.Clustering.processor mod processors in
        load.(p) <- load.(p) +. (s.Clustering.finish -. s.Clustering.start);
        {
          task = s.Clustering.task;
          processor = p;
          start = s.Clustering.start;
          finish = s.Clustering.finish;
        })
      scheduled
    |> List.sort (fun a b -> Float.compare a.start b.start)
  in
  let makespan = List.fold_left (fun acc pl -> Float.max acc pl.finish) 0.0 placements in
  { placements; makespan; processor_load = load }

let to_clustering t =
  let buckets = Hashtbl.create 8 in
  List.iter
    (fun pl ->
      Hashtbl.replace buckets pl.processor
        (pl.task :: Option.value (Hashtbl.find_opt buckets pl.processor) ~default:[]))
    t.placements;
  Hashtbl.fold (fun _ tasks acc -> List.rev tasks :: acc) buckets []
  |> Clustering.of_groups

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule (makespan %.1f)" t.makespan;
  List.iter
    (fun pl ->
      Format.fprintf ppf "@,  %-12s p%d  %.1f - %.1f" pl.task pl.processor pl.start
        pl.finish)
    t.placements;
  Format.fprintf ppf "@]"
