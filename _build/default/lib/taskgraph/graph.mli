(** Weighted directed task graphs.

    Nodes carry a computation cost, edges carry a communication cost
    (the paper uses the amount of transferred data, §4.2.3).  The
    structure is mutable during construction and then used read-only by
    the algorithms. *)

type node_id = string
type t

val create : unit -> t

val add_node : t -> ?weight:float -> node_id -> unit
(** Adds (or re-weights) a node.  Default weight 1.0. *)

val add_edge : t -> ?weight:float -> node_id -> node_id -> unit
(** Adds the edge, creating endpoints as needed; adding an existing
    edge accumulates its weight.  Default weight 1.0. *)

val remove_edge : t -> node_id -> node_id -> unit
val mem_node : t -> node_id -> bool
val mem_edge : t -> node_id -> node_id -> bool

val nodes : t -> node_id list
(** In insertion order. *)

val node_count : t -> int
val edge_count : t -> int
val succs : t -> node_id -> node_id list
val preds : t -> node_id -> node_id list
val node_weight : t -> node_id -> float
val edge_weight : t -> node_id -> node_id -> float

val edges : t -> (node_id * node_id * float) list
(** All edges as (src, dst, weight), in insertion order of sources. *)

val total_edge_weight : t -> float

val copy : t -> t
val transpose : t -> t

val of_lists :
  nodes:(node_id * float) list -> edges:(node_id * node_id * float) list -> t

val pp : Format.formatter -> t -> unit
