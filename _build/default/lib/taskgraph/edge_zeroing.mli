(** Sarkar's edge-zeroing clustering baseline: examine edges by
    decreasing communication weight and merge the two endpoint clusters
    whenever the merge does not increase the estimated parallel time. *)

val run : Graph.t -> Clustering.t
(** @raise Algo.Cycle when the graph is not a DAG. *)
