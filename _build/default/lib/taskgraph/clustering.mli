(** Clusterings of a task graph: a partition of the nodes where every
    cluster ends up on its own processor.  Provides the quality metrics
    used to compare allocation heuristics (inter-cluster communication
    volume and estimated parallel time). *)

type t

val of_groups : Graph.node_id list list -> t
(** @raise Invalid_argument if a node appears in two groups. *)

val singleton_per_node : Graph.t -> t

val groups : t -> Graph.node_id list list
(** Clusters in index order; node order inside a cluster is the order
    given at construction. *)

val cluster_of : t -> Graph.node_id -> int
(** @raise Not_found for unknown nodes. *)

val same_cluster : t -> Graph.node_id -> Graph.node_id -> bool
val cluster_count : t -> int
val merge : t -> int -> int -> t
(** Merge two clusters (by index); indices are renumbered densely. *)

val is_partition_of : Graph.t -> t -> bool
(** Every graph node in exactly one cluster and vice versa. *)

val is_linear : Graph.t -> t -> bool
(** Every cluster is totally ordered by reachability (no two
    independent tasks share a cluster) — the defining property of
    linear clustering. *)

(** {1 Metrics} *)

val inter_cluster_volume : Graph.t -> t -> float
(** Sum of edge weights crossing cluster boundaries (the inter-CPU
    communication the optimization minimizes). *)

val intra_cluster_volume : Graph.t -> t -> float

type scheduled = {
  task : Graph.node_id;
  processor : int;
  start : float;
  finish : float;
}

val schedule : Graph.t -> t -> scheduled list
(** Execute each cluster on its own processor: tasks run in global
    topological order, a task starts when its processor is free and all
    predecessor data has arrived (communication cost zero inside a
    cluster, the edge weight across clusters).  Graph must be a DAG. *)

val parallel_time : Graph.t -> t -> float
(** Makespan of {!schedule}. *)

val sequential_time : Graph.t -> float
(** Sum of all node weights (single-processor baseline, no comm). *)

val granularity : Graph.t -> float
(** Gerasoulis & Yang's grain measure (their ref is the paper's [18]):
    the minimum over nodes of (smallest adjacent computation) /
    (largest adjacent communication).  A graph is coarse-grain when the
    result is >= 1, the regime where linear clustering is provably
    within a factor 2 of the optimal clustering.  Returns [infinity]
    for graphs without edges. *)

val critical_path_cluster : Graph.t -> t -> bool
(** True when all nodes of the graph's critical path share one cluster
    (the "good practice" §4.2.3 points out). *)

val pp : Format.formatter -> t -> unit
