(** Linear clustering of a task graph, after Gerasoulis & Yang, "On the
    Granularity and Clustering of Directed Acyclic Task Graphs", IEEE
    TPDS 4(6), 1993 — the algorithm the paper's thread-allocation
    optimization uses (§4.2.3).

    The algorithm repeatedly finds the critical path (computation plus
    communication) of the subgraph induced by still-unexamined nodes,
    turns that path into one cluster (zeroing its internal edges), and
    marks its nodes examined.  Parallel tasks end up in different
    clusters; chains of heavily-communicating tasks share one. *)

val run : Graph.t -> Clustering.t
(** @raise Algo.Cycle when the graph is not a DAG.  The result is a
    linear clustering ({!Clustering.is_linear}) and the whole critical
    path of the graph lands in the first cluster. *)

val run_bounded : max_clusters:int -> Graph.t -> Clustering.t
(** Like {!run}, then folds the smallest-load clusters together until
    at most [max_clusters] remain (for platforms with a fixed CPU
    count).  The result is generally no longer linear. *)
