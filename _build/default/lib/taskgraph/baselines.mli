(** Trivial allocation baselines for the ablation benches. *)

val single_cluster : Graph.t -> Clustering.t
(** Everything on one CPU: zero inter-CPU communication, zero
    parallelism. *)

val one_per_node : Graph.t -> Clustering.t
(** One CPU per task: maximum parallelism, maximum communication. *)

val round_robin : cpus:int -> Graph.t -> Clustering.t
(** Deal nodes (in insertion order) over [cpus] clusters. *)

val random : seed:int -> cpus:int -> Graph.t -> Clustering.t
(** Uniform random placement, deterministic in [seed]. *)
