(** Classic DAG algorithms used by the clustering heuristics and by the
    temporal-barrier inserter. *)

exception Cycle of Graph.node_id list
(** A cycle, as the list of nodes along it. *)

val topological_sort : Graph.t -> Graph.node_id list
(** @raise Cycle when the graph is not a DAG. *)

val is_acyclic : Graph.t -> bool

val find_cycle : Graph.t -> Graph.node_id list option
(** Some cycle as a node list [n1; ...; nk] with edges n1->n2->...->nk->n1. *)

val all_back_edges : Graph.t -> (Graph.node_id * Graph.node_id) list
(** Back edges of a DFS over the graph in node order; removing them all
    makes the graph acyclic. *)

val sources : Graph.t -> Graph.node_id list
val sinks : Graph.t -> Graph.node_id list

val top_level : Graph.t -> (Graph.node_id -> float)
(** [tlevel v]: longest path length (node + edge weights) from any
    source to [v], excluding [v]'s own weight.  Graph must be a DAG. *)

val bottom_level : Graph.t -> (Graph.node_id -> float)
(** [blevel v]: longest path length from [v] to any sink, including
    [v]'s weight. *)

val critical_path : Graph.t -> Graph.node_id list * float
(** Longest path through the DAG (nodes in order, and its length
    including communication). *)

val longest_path_between :
  Graph.t -> src:Graph.node_id -> dst:Graph.node_id -> Graph.node_id list option

val reachable : Graph.t -> Graph.node_id -> Graph.node_id list
(** Nodes reachable from the given node (excluding it), DFS order. *)
