(** Dominant Sequence Clustering (Yang & Gerasoulis), simplified: a
    stronger clustering baseline than plain linear clustering for the
    allocation-quality ablation.

    Nodes are examined in decreasing [tlevel + blevel] priority among
    free nodes; each node tries to join the predecessor cluster that
    most reduces its top level, and stays alone when no merge helps. *)

val run : Graph.t -> Clustering.t
(** @raise Algo.Cycle when the graph is not a DAG. *)
