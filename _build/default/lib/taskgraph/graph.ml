type node_id = string

type node_record = {
  mutable weight : float;
  mutable out_edges : (node_id * float) list;  (* reverse insertion order *)
  mutable in_edges : node_id list;
}

type t = {
  table : (node_id, node_record) Hashtbl.t;
  mutable order : node_id list;  (* reverse insertion order *)
}

let create () = { table = Hashtbl.create 32; order = [] }

let find_or_add g id =
  match Hashtbl.find_opt g.table id with
  | Some r -> r
  | None ->
      let r = { weight = 1.0; out_edges = []; in_edges = [] } in
      Hashtbl.add g.table id r;
      g.order <- id :: g.order;
      r

let add_node g ?(weight = 1.0) id =
  let r = find_or_add g id in
  r.weight <- weight

let mem_node g id = Hashtbl.mem g.table id

let add_edge g ?(weight = 1.0) src dst =
  let rs = find_or_add g src in
  let rd = find_or_add g dst in
  match List.assoc_opt dst rs.out_edges with
  | Some w ->
      rs.out_edges <-
        (dst, w +. weight) :: List.remove_assoc dst rs.out_edges
  | None ->
      rs.out_edges <- (dst, weight) :: rs.out_edges;
      rd.in_edges <- src :: rd.in_edges

let remove_edge g src dst =
  match Hashtbl.find_opt g.table src with
  | None -> ()
  | Some rs ->
      if List.mem_assoc dst rs.out_edges then (
        rs.out_edges <- List.remove_assoc dst rs.out_edges;
        let rd = Hashtbl.find g.table dst in
        rd.in_edges <- List.filter (fun s -> not (String.equal s src)) rd.in_edges)

let mem_edge g src dst =
  match Hashtbl.find_opt g.table src with
  | Some r -> List.mem_assoc dst r.out_edges
  | None -> false

let nodes g = List.rev g.order
let node_count g = Hashtbl.length g.table

let record g id =
  match Hashtbl.find_opt g.table id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "taskgraph: unknown node %s" id)

let succs g id = List.rev_map fst (record g id).out_edges
let preds g id = List.rev (record g id).in_edges
let node_weight g id = (record g id).weight

let edge_weight g src dst =
  match List.assoc_opt dst (record g src).out_edges with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "taskgraph: no edge %s->%s" src dst)

let edges g =
  nodes g
  |> List.concat_map (fun src ->
         List.rev_map (fun (dst, w) -> (src, dst, w)) (record g src).out_edges)

let edge_count g = List.length (edges g)
let total_edge_weight g = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 (edges g)

let of_lists ~nodes ~edges =
  let g = create () in
  List.iter (fun (id, w) -> add_node g ~weight:w id) nodes;
  List.iter (fun (s, d, w) -> add_edge g ~weight:w s d) edges;
  g

let copy g =
  of_lists ~nodes:(List.map (fun id -> (id, node_weight g id)) (nodes g)) ~edges:(edges g)

let transpose g =
  of_lists
    ~nodes:(List.map (fun id -> (id, node_weight g id)) (nodes g))
    ~edges:(List.map (fun (s, d, w) -> (d, s, w)) (edges g))

let pp ppf g =
  Format.fprintf ppf "@[<v>graph (%d nodes, %d edges)" (node_count g) (edge_count g);
  List.iter
    (fun id -> Format.fprintf ppf "@,  %s (%.1f)" id (node_weight g id))
    (nodes g);
  List.iter
    (fun (s, d, w) -> Format.fprintf ppf "@,  %s -> %s (%.1f)" s d w)
    (edges g);
  Format.fprintf ppf "@]"
