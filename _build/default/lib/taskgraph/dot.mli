(** Graphviz export of task graphs and clusterings — the Fig. 7-style
    artifacts (task graph, cluster boxes) for documentation. *)

val graph : Graph.t -> string
(** Plain digraph: nodes labelled with weights, edges with costs. *)

val clustered : Graph.t -> Clustering.t -> string
(** Same digraph with one Graphviz [subgraph cluster_i] box per
    cluster, as in the paper's Fig. 7(b). *)

val save : string -> path:string -> unit
