type t = { group_list : Graph.node_id list list }

let of_groups groups =
  let seen = Hashtbl.create 32 in
  List.iter
    (List.iter (fun id ->
         if Hashtbl.mem seen id then
           invalid_arg (Printf.sprintf "clustering: node %s in two clusters" id);
         Hashtbl.add seen id ()))
    groups;
  { group_list = List.filter (fun g -> g <> []) groups }

let singleton_per_node g = of_groups (List.map (fun id -> [ id ]) (Graph.nodes g))
let groups t = t.group_list

let cluster_of t id =
  let rec find idx = function
    | [] -> raise Not_found
    | g :: rest -> if List.mem id g then idx else find (idx + 1) rest
  in
  find 0 t.group_list

let same_cluster t a b = cluster_of t a = cluster_of t b
let cluster_count t = List.length t.group_list

let merge t i j =
  if i = j then t
  else
    let lo = min i j and hi = max i j in
    let merged = List.nth t.group_list lo @ List.nth t.group_list hi in
    let rest =
      List.filteri (fun idx _ -> idx <> lo && idx <> hi) t.group_list
    in
    { group_list = merged :: rest }

let is_partition_of g t =
  let graph_nodes = List.sort_uniq compare (Graph.nodes g) in
  let cluster_nodes = List.sort compare (List.concat t.group_list) in
  let distinct = List.sort_uniq compare cluster_nodes in
  List.length cluster_nodes = List.length distinct && graph_nodes = distinct

let is_linear g t =
  let reach = Hashtbl.create 32 in
  let reaches a b =
    let set =
      match Hashtbl.find_opt reach a with
      | Some s -> s
      | None ->
          let s = Algo.reachable g a in
          Hashtbl.replace reach a s;
          s
    in
    List.mem b set
  in
  List.for_all
    (fun group ->
      let rec pairs = function
        | [] -> true
        | a :: rest ->
            List.for_all (fun b -> reaches a b || reaches b a) rest && pairs rest
      in
      pairs group)
    t.group_list

let inter_cluster_volume g t =
  List.fold_left
    (fun acc (src, dst, w) -> if same_cluster t src dst then acc else acc +. w)
    0.0 (Graph.edges g)

let intra_cluster_volume g t =
  List.fold_left
    (fun acc (src, dst, w) -> if same_cluster t src dst then acc +. w else acc)
    0.0 (Graph.edges g)

type scheduled = {
  task : Graph.node_id;
  processor : int;
  start : float;
  finish : float;
}

let schedule g t =
  let order = Algo.topological_sort g in
  let proc_free = Hashtbl.create 8 in
  let finish_time = Hashtbl.create 32 in
  let free p = try Hashtbl.find proc_free p with Not_found -> 0.0 in
  List.map
    (fun task ->
      let processor = cluster_of t task in
      let data_ready =
        List.fold_left
          (fun acc p ->
            let comm = if same_cluster t p task then 0.0 else Graph.edge_weight g p task in
            Float.max acc (Hashtbl.find finish_time p +. comm))
          0.0 (Graph.preds g task)
      in
      let start = Float.max (free processor) data_ready in
      let finish = start +. Graph.node_weight g task in
      Hashtbl.replace proc_free processor finish;
      Hashtbl.replace finish_time task finish;
      { task; processor; start; finish })
    order

let parallel_time g t =
  List.fold_left (fun acc s -> Float.max acc s.finish) 0.0 (schedule g t)

let sequential_time g =
  List.fold_left (fun acc id -> acc +. Graph.node_weight g id) 0.0 (Graph.nodes g)

let granularity g =
  let grain_at node =
    let adjacent =
      List.map (fun p -> (Graph.node_weight g p, Graph.edge_weight g p node)) (Graph.preds g node)
      @ List.map (fun s -> (Graph.node_weight g s, Graph.edge_weight g node s)) (Graph.succs g node)
    in
    match adjacent with
    | [] -> infinity
    | _ :: _ ->
        let min_comp =
          List.fold_left (fun acc (c, _) -> Float.min acc c) infinity adjacent
        in
        let max_comm = List.fold_left (fun acc (_, w) -> Float.max acc w) 0.0 adjacent in
        if max_comm <= 0.0 then infinity else min_comp /. max_comm
  in
  List.fold_left (fun acc v -> Float.min acc (grain_at v)) infinity (Graph.nodes g)

let critical_path_cluster g t =
  match fst (Algo.critical_path g) with
  | [] -> true
  | first :: rest ->
      let c = cluster_of t first in
      List.for_all (fun id -> cluster_of t id = c) rest

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i group ->
      Format.fprintf ppf "cluster %d: {%s}@," i (String.concat ", " group))
    t.group_list;
  Format.fprintf ppf "@]"
