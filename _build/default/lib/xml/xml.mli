(** Minimal self-contained XML library.

    Supports exactly what the model serialization layers need: elements
    with attributes, text nodes, comments, declarations, escaping, a
    pretty-printer and a recursive-descent parser.  Namespaces are kept
    as plain prefixed names. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (tag, attributes, children)] *)
  | Text of string
  | Comment of string

exception Parse_error of { line : int; column : int; message : string }

(** {1 Construction} *)

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

(** {1 Accessors} *)

val tag : t -> string
(** Tag of an element. @raise Invalid_argument on [Text]/[Comment]. *)

val attrs : t -> (string * string) list
val children : t -> t list

val attr : string -> t -> string option
(** [attr name e] is the value of attribute [name] of element [e]. *)

val attr_exn : string -> t -> string
(** @raise Not_found when the attribute is missing. *)

val child : string -> t -> t option
(** First child element with the given tag. *)

val children_named : string -> t -> t list
(** All child elements with the given tag, in document order. *)

val element_children : t -> t list
(** All child elements (text and comments dropped). *)

val text_content : t -> string
(** Concatenation of all text nodes reachable from the node. *)

(** {1 Escaping} *)

val escape_attribute : string -> string
val escape_text : string -> string

(** {1 Printing} *)

val to_string : ?declaration:bool -> ?indent:int -> t -> string
(** Pretty-print a document.  [declaration] (default [true]) prepends the
    [<?xml ...?>] header; [indent] (default [2]) is the indent step. *)

val pp : Format.formatter -> t -> unit

(** {1 Parsing} *)

val parse_string : string -> t
(** Parse a document and return its root element.
    @raise Parse_error on malformed input. *)

val parse_file : string -> t

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Structural equality, ignoring comments and whitespace-only text
    nodes, with attributes compared as sets. *)
