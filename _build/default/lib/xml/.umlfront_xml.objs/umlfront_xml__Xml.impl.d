lib/xml/xml.ml: Buffer Char Format List Printf String
