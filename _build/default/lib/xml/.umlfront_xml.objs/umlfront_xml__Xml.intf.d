lib/xml/xml.mli: Format
