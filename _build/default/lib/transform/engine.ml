module Mm = Umlfront_metamodel.Mmodel
module Meta = Umlfront_metamodel.Meta
module Trace = Umlfront_metamodel.Trace

type context = { source : Mm.t; target : Mm.t; trace : Trace.t }

let resolve ?rule ctx obj =
  match Trace.targets_of ?rule ctx.trace (Mm.id obj) with
  | [] -> None
  | id :: _ -> Mm.find ctx.target id

let resolve_all ?rule ctx obj =
  Trace.targets_of ?rule ctx.trace (Mm.id obj) |> List.filter_map (Mm.find ctx.target)

type rule = {
  rule_name : string;
  source_class : string;
  guard : context -> Mm.obj -> bool;
  produce : context -> Mm.obj -> Mm.obj list;
  bind : context -> Mm.obj -> Mm.obj list -> unit;
}

let rule ?(guard = fun _ _ -> true) ?(bind = fun _ _ _ -> ()) ~name ~source produce =
  { rule_name = name; source_class = source; guard; produce; bind }

type result = {
  output : Mm.t;
  links : Trace.t;
  applied : (string * int) list;
}

let run ~rules ~source ~target_metamodel =
  let ctx =
    { source; target = Mm.create target_metamodel; trace = Trace.create () }
  in
  let counts = Hashtbl.create 8 in
  let bump name =
    Hashtbl.replace counts name (1 + Option.value (Hashtbl.find_opt counts name) ~default:0)
  in
  let matches r obj =
    Meta.is_subclass_of (Mm.metamodel source) ~sub:(Mm.class_of obj)
      ~super:r.source_class
    && r.guard ctx obj
  in
  (* Produce phase. *)
  let produced =
    List.concat_map
      (fun r ->
        Mm.objects source
        |> List.filter_map (fun obj ->
               if matches r obj then (
                 let targets = r.produce ctx obj in
                 Trace.record ctx.trace ~rule:r.rule_name ~sources:[ Mm.id obj ]
                   ~targets:(List.map Mm.id targets);
                 bump r.rule_name;
                 Some (r, obj, targets))
               else None))
      rules
  in
  (* Bind phase. *)
  List.iter (fun (r, obj, targets) -> r.bind ctx obj targets) produced;
  {
    output = ctx.target;
    links = ctx.trace;
    applied =
      List.filter_map
        (fun r -> Option.map (fun n -> (r.rule_name, n)) (Hashtbl.find_opt counts r.rule_name))
        rules;
  }
