lib/transform/m2t.ml: Buffer Printf String
