lib/transform/engine.ml: Hashtbl List Option Umlfront_metamodel
