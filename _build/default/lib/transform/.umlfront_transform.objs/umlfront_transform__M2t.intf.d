lib/transform/m2t.mli:
