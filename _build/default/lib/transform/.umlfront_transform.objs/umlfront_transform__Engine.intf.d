lib/transform/engine.mli: Umlfront_metamodel
