(** Model-to-text support: an indentation-tracking emitter used by the
    code generators (step 4 of the mapping flow produces text from the
    optimized model). *)

type t

val create : ?indent_step:int -> unit -> t
val line : t -> ('a, unit, string, unit) format4 -> 'a
val blank : t -> unit
val raw : t -> string -> unit
(** Append without newline or indentation. *)

val indented : t -> (unit -> unit) -> unit
(** Run the thunk with one extra indent level. *)

val block : t -> opener:string -> closer:string -> (unit -> unit) -> unit
(** [line opener]; indented body; [line closer]. *)

val contents : t -> string
