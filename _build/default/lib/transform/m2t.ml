type t = { buf : Buffer.t; indent_step : int; mutable level : int }

let create ?(indent_step = 2) () = { buf = Buffer.create 1024; indent_step; level = 0 }

let pad t = Buffer.add_string t.buf (String.make (t.level * t.indent_step) ' ')

let line t fmt =
  Printf.ksprintf
    (fun s ->
      pad t;
      Buffer.add_string t.buf s;
      Buffer.add_char t.buf '\n')
    fmt

let blank t = Buffer.add_char t.buf '\n'
let raw t s = Buffer.add_string t.buf s

let indented t body =
  t.level <- t.level + 1;
  body ();
  t.level <- t.level - 1

let block t ~opener ~closer body =
  line t "%s" opener;
  indented t body;
  line t "%s" closer

let contents t = Buffer.contents t.buf
