(** A small declarative model-to-model transformation engine over
    {!Umlfront_metamodel} dynamic models — the role smartQVT/ATL play in
    the paper's mapping flow (Fig. 2): rules match source metaclasses,
    produce target elements, and a second binding phase resolves
    cross-references through the trace.

    Execution model (ATL-like):
    + {e produce} phase: every rule is applied to every source object
      whose class conforms to the rule's source class and whose guard
      holds; created target objects are recorded in the trace.
    + {e bind} phase: rules revisit each (source, targets) match and may
      set attributes/references on targets, resolving source objects to
      their targets via {!resolve}. *)

type context = {
  source : Umlfront_metamodel.Mmodel.t;
  target : Umlfront_metamodel.Mmodel.t;
  trace : Umlfront_metamodel.Trace.t;
}

val resolve :
  ?rule:string -> context -> Umlfront_metamodel.Mmodel.obj ->
  Umlfront_metamodel.Mmodel.obj option
(** First target produced from the given source object. *)

val resolve_all :
  ?rule:string -> context -> Umlfront_metamodel.Mmodel.obj ->
  Umlfront_metamodel.Mmodel.obj list

type rule = {
  rule_name : string;
  source_class : string;
  guard : context -> Umlfront_metamodel.Mmodel.obj -> bool;
  produce :
    context -> Umlfront_metamodel.Mmodel.obj -> Umlfront_metamodel.Mmodel.obj list;
  bind :
    context ->
    Umlfront_metamodel.Mmodel.obj ->
    Umlfront_metamodel.Mmodel.obj list ->
    unit;
}

val rule :
  ?guard:(context -> Umlfront_metamodel.Mmodel.obj -> bool) ->
  ?bind:
    (context ->
    Umlfront_metamodel.Mmodel.obj ->
    Umlfront_metamodel.Mmodel.obj list ->
    unit) ->
  name:string ->
  source:string ->
  (context -> Umlfront_metamodel.Mmodel.obj -> Umlfront_metamodel.Mmodel.obj list) ->
  rule

type result = {
  output : Umlfront_metamodel.Mmodel.t;
  links : Umlfront_metamodel.Trace.t;
  applied : (string * int) list;  (** rule name -> match count *)
}

val run :
  rules:rule list ->
  source:Umlfront_metamodel.Mmodel.t ->
  target_metamodel:Umlfront_metamodel.Meta.t ->
  result
