(** Multithreaded Java generation from a CAAM — the paper's "generate
    multithreaded code for other languages, e.g. Java" fallback
    (Fig. 1).  Same thread/FIFO structure as {!Gen_threads}, with
    [ArrayBlockingQueue<Double>] standing in for the FIFO runtime. *)

val generate : ?rounds:int -> ?class_name:string -> Umlfront_simulink.Model.t -> string
(** One self-contained Java source file. *)

val save :
  ?rounds:int -> ?class_name:string -> Umlfront_simulink.Model.t -> dir:string -> unit
