(** The C FIFO runtime the generated multithreaded code links against:
    a bounded ring buffer guarded by a pthread mutex/condvar.  SWFIFO
    (intra-CPU) and GFIFO (inter-CPU, bus) share the implementation but
    keep distinct constructors so the protocol choice stays visible in
    the generated code, as in the CAAM. *)

val header : string
(** Contents of [fifo.h]. *)

val source : string
(** Contents of [fifo.c]. *)

val save : dir:string -> unit
