module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module Kpn = Umlfront_dataflow.Kpn
module M2t = Umlfront_transform.M2t

let sanitize = Gen_threads.sanitize

let generate ?(rounds = 10) (m : Model.t) =
  let sdf = Sdf.of_model m in
  let t = M2t.create () in
  M2t.line t "(* Kahn process network generated from CAAM model %s." m.Model.model_name;
  M2t.line t "   One process per actor, one unbounded FIFO per dataflow edge;";
  M2t.line t "   UnitDelay processes prime their channels with the initial";
  M2t.line t "   condition, the KPN analogue of the temporal barrier. *)";
  M2t.blank t;
  M2t.line t "module Kpn = Umlfront_dataflow.Kpn";
  M2t.line t "module Sdf = Umlfront_dataflow.Sdf";
  M2t.line t "module Mdl = Umlfront_simulink.Mdl_parser";
  M2t.blank t;
  M2t.line t "let rounds = %d" rounds;
  M2t.blank t;
  M2t.line t "(* Channel names, one per edge of the flattened model: *)";
  List.iter
    (fun (e : Sdf.edge) ->
      M2t.line t "let ch_%s_%s = %S" (sanitize e.Sdf.edge_src) (sanitize e.Sdf.edge_dst)
        (Kpn.channel_name e))
    sdf.Sdf.edges;
  M2t.blank t;
  M2t.line t "(* The embedded model, reparsed at runtime: *)";
  M2t.line t "let mdl_text = {mdl|%s|mdl}" (Umlfront_simulink.Mdl_writer.to_string m);
  M2t.blank t;
  M2t.line t "let network () =";
  M2t.indented t (fun () ->
      M2t.line t "let model = Mdl.parse_string mdl_text in";
      M2t.line t "Kpn.of_sdf ~rounds (Sdf.of_model model)";
      ());
  M2t.blank t;
  M2t.line t "let () =";
  M2t.indented t (fun () ->
      M2t.line t "let outcome = Kpn.run (network ()) in";
      M2t.line t "List.iter";
      M2t.line t "  (fun (name, value) -> Printf.printf \"%%s %%.9f\\n\" name value)";
      M2t.line t "  (List.filter";
      M2t.line t "     (fun (name, _) ->";
      M2t.line t "       List.mem name";
      M2t.line t "         [%s])"
        (String.concat "; " (List.map (Printf.sprintf "%S") sdf.Sdf.graph_outputs));
      M2t.line t "     outcome.Kpn.results)");
  M2t.contents t

let save ?rounds m ~dir =
  let oc = open_out (Filename.concat dir "model_kpn.ml") in
  output_string oc (generate ?rounds m);
  close_out oc
