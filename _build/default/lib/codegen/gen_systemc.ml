module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module M2t = Umlfront_transform.M2t

let sanitize = Gen_threads.sanitize

type owner = Env | Worker of string * string

let owner_of (a : Sdf.actor) =
  match a.Sdf.actor_path with
  | [] -> Env
  | [ cpu ] -> Worker (cpu, "main")
  | cpu :: thread :: _ -> Worker (cpu, thread)

let is_delay (a : Sdf.actor) = a.Sdf.actor_block.S.blk_type = B.Unit_delay

let param_float (blk : S.block) key fallback =
  match List.assoc_opt key blk.S.blk_params with
  | Some (B.P_float f) -> f
  | Some (B.P_int i) -> float_of_int i
  | Some _ | None -> fallback

let out_var a port = Printf.sprintf "v_%s_%d" (sanitize a.Sdf.actor_name) port
let state_member a = Printf.sprintf "state_%s" (sanitize a.Sdf.actor_name)
let snapshot_var a = Printf.sprintf "snap_%s" (sanitize a.Sdf.actor_name)

let generate ?(rounds = 10) (m : Model.t) =
  let sdf = Sdf.of_model m in
  let order = Exec.firing_order sdf in
  let actor name = Option.get (Sdf.find_actor sdf name) in
  let counter = ref 0 in
  let fifos =
    sdf.Sdf.edges
    |> List.filter_map (fun (e : Sdf.edge) ->
           if owner_of (actor e.Sdf.edge_src) = owner_of (actor e.Sdf.edge_dst) then None
           else (
             incr counter;
             let protocol =
               if List.mem "GFIFO" (List.map snd e.Sdf.edge_channels) then "GFIFO"
               else "SWFIFO"
             in
             Some (Printf.sprintf "f%d" !counter, protocol, e)))
  in
  let fifo_for e =
    List.find_opt (fun (_, _, fe) -> fe = e) fifos |> Option.map (fun (v, _, _) -> v)
  in
  let workers =
    List.filter_map
      (fun name ->
        match owner_of (actor name) with Worker (c, t) -> Some (c, t) | Env -> None)
      order
    |> List.fold_left (fun acc o -> if List.mem o acc then acc else o :: acc) []
    |> List.rev
  in
  let t = M2t.create () in
  M2t.line t "// Generated SystemC platform for CAAM model %s." m.Model.model_name;
  M2t.line t "// One SC_MODULE per Thread-SS; sc_fifo channels carry the";
  M2t.line t "// protocols chosen by channel inference (SWFIFO intra-CPU,";
  M2t.line t "// GFIFO inter-CPU over the bus).";
  M2t.line t "#include <systemc.h>";
  M2t.line t "#include <cmath>";
  M2t.blank t;
  M2t.line t "static const int ROUNDS = %d;" rounds;
  M2t.blank t;
  (* Default S-function behaviours, constants in lockstep with the
     reference simulator. *)
  let sfuncs =
    sdf.Sdf.actors
    |> List.filter_map (fun (a : Sdf.actor) ->
           if a.Sdf.actor_block.S.blk_type = B.S_function then
             Some
               (Option.value
                  (S.param_string a.Sdf.actor_block "FunctionName")
                  ~default:a.Sdf.actor_block.S.blk_name)
           else None)
    |> List.sort_uniq compare
  in
  List.iter
    (fun name ->
      let h = Hashtbl.hash name in
      let ca = 0.25 +. (float_of_int (h mod 7) /. 8.0) in
      let cb = float_of_int (h mod 13) /. 13.0 in
      M2t.line t "static double sfun_%s(const double *in, int n_in, int port) {"
        (sanitize name);
      M2t.indented t (fun () ->
          M2t.line t "double total = 0.0;";
          M2t.line t "for (int i = 0; i < n_in; ++i) total += in[i];";
          M2t.line t "return %.17g * total + %.17g + 0.1 * port;" ca cb);
      M2t.line t "}")
    sfuncs;
  M2t.blank t;
  (* One module per worker thread. *)
  let emit_worker (cpu, thread) =
    let mine = List.filter (fun n -> owner_of (actor n) = Worker (cpu, thread)) order in
    let module_name = Printf.sprintf "Thread_%s_%s" (sanitize cpu) (sanitize thread) in
    let my_fifo_ports =
      fifos
      |> List.filter_map (fun (v, _, (e : Sdf.edge)) ->
             let src_owner = owner_of (actor e.Sdf.edge_src) in
             let dst_owner = owner_of (actor e.Sdf.edge_dst) in
             if src_owner = Worker (cpu, thread) then Some (v, `Out)
             else if dst_owner = Worker (cpu, thread) then Some (v, `In)
             else None)
    in
    M2t.line t "SC_MODULE(%s) {" module_name;
    M2t.indented t (fun () ->
        List.iter
          (fun (v, dir) ->
            match dir with
            | `In -> M2t.line t "sc_fifo_in<double> %s;" v
            | `Out -> M2t.line t "sc_fifo_out<double> %s;" v)
          my_fifo_ports;
        List.iter
          (fun name ->
            let a = actor name in
            if is_delay a then
              M2t.line t "double %s = %.17g;" (state_member a)
                (param_float a.Sdf.actor_block "InitialCondition" 0.0))
          mine;
        M2t.blank t;
        M2t.line t "void behaviour() {";
        M2t.indented t (fun () ->
            M2t.line t "for (int round = 0; round < ROUNDS; ++round) {";
            M2t.indented t (fun () ->
                (* Phase 0: push delay snapshots. *)
                List.iter
                  (fun name ->
                    let a = actor name in
                    if is_delay a then (
                      M2t.line t "double %s = %s;" (snapshot_var a) (state_member a);
                      Sdf.succs sdf a.Sdf.actor_name
                      |> List.iter (fun e ->
                             match fifo_for e with
                             | Some v -> M2t.line t "%s.write(%s);" v (snapshot_var a)
                             | None -> ())))
                  mine;
                (* Actors in firing order. *)
                List.iter
                  (fun name ->
                    let a = actor name in
                    let blk = a.Sdf.actor_block in
                    let popped =
                      Sdf.preds sdf a.Sdf.actor_name
                      |> List.filter_map (fun (e : Sdf.edge) ->
                             match fifo_for e with
                             | Some v ->
                                 let tmp =
                                   Printf.sprintf "p_%s_%d" (sanitize a.Sdf.actor_name)
                                     e.Sdf.edge_dst_port
                                 in
                                 M2t.line t "double %s = %s.read();" tmp v;
                                 Some (v, tmp)
                             | None -> None)
                    in
                    let input port =
                      let feeding =
                        Sdf.preds sdf a.Sdf.actor_name
                        |> List.find_opt (fun (e : Sdf.edge) -> e.Sdf.edge_dst_port = port)
                      in
                      match feeding with
                      | None -> "0.0"
                      | Some e -> (
                          match fifo_for e with
                          | Some v -> (
                              match List.assoc_opt v popped with
                              | Some tmp -> tmp
                              | None -> v ^ ".read()")
                          | None ->
                              let src = actor e.Sdf.edge_src in
                              if is_delay src then snapshot_var src
                              else out_var src e.Sdf.edge_src_port)
                    in
                    let simple expr = M2t.line t "double %s = %s;" (out_var a 1) expr in
                    (match blk.S.blk_type with
                    | B.Constant -> simple (Printf.sprintf "%.17g" (param_float blk "Value" 0.0))
                    | B.Ground -> simple "0.0"
                    | B.Gain ->
                        simple
                          (Printf.sprintf "%.17g * (%s)" (param_float blk "Gain" 1.0) (input 1))
                    | B.Product ->
                        simple
                          (if a.Sdf.actor_inputs = 0 then "1.0"
                          else
                            String.concat " * "
                              (List.init a.Sdf.actor_inputs (fun i ->
                                   "(" ^ input (i + 1) ^ ")")))
                    | B.Sum ->
                        let signs =
                          match S.param_string blk "Inputs" with
                          | Some s when String.length s = a.Sdf.actor_inputs ->
                              List.init a.Sdf.actor_inputs (fun i -> s.[i])
                          | Some _ | None -> List.init a.Sdf.actor_inputs (fun _ -> '+')
                        in
                        simple
                          ("0.0 "
                          ^ String.concat " "
                              (List.mapi
                                 (fun i sign ->
                                   Printf.sprintf "%c (%s)"
                                     (if sign = '-' then '-' else '+')
                                     (input (i + 1)))
                                 signs))
                    | B.Saturation ->
                        simple
                          (Printf.sprintf "std::fmin(%.17g, std::fmax(%.17g, %s))"
                             (param_float blk "UpperLimit" 1.0)
                             (param_float blk "LowerLimit" (-1.0))
                             (input 1))
                    | B.Switch ->
                        simple
                          (Printf.sprintf "(%s) >= %.17g ? (%s) : (%s)" (input 2)
                             (param_float blk "Threshold" 0.0)
                             (input 1) (input 3))
                    | B.Abs -> simple (Printf.sprintf "std::fabs(%s)" (input 1))
                    | B.Sqrt -> simple (Printf.sprintf "std::sqrt(%s)" (input 1))
                    | B.Trig ->
                        let fn =
                          match S.param_string blk "Function" with
                          | Some ("cos" | "tan") as f -> Option.get f
                          | Some _ | None -> "sin"
                        in
                        simple (Printf.sprintf "std::%s(%s)" fn (input 1))
                    | B.Min_max ->
                        let fn =
                          if S.param_string blk "Function" = Some "min" then "std::fmin"
                          else "std::fmax"
                        in
                        let rec fold i acc =
                          if i > a.Sdf.actor_inputs then acc
                          else fold (i + 1) (Printf.sprintf "%s(%s, %s)" fn acc (input i))
                        in
                        simple (if a.Sdf.actor_inputs = 0 then "0.0" else fold 2 (input 1))
                    | B.Math ->
                        let fn =
                          if S.param_string blk "Function" = Some "log" then "std::log"
                          else "std::exp"
                        in
                        simple (Printf.sprintf "%s(%s)" fn (input 1))
                    | B.Mux -> simple (input 1)
                    | B.Demux ->
                        for p = 1 to a.Sdf.actor_outputs do
                          M2t.line t "double %s = %s;" (out_var a p) (input 1)
                        done
                    | B.Terminator -> M2t.line t "(void)(%s);" (input 1)
                    | B.Unit_delay -> M2t.line t "%s = %s;" (state_member a) (input 1)
                    | B.S_function ->
                        let fn =
                          Option.value (S.param_string blk "FunctionName")
                            ~default:blk.S.blk_name
                        in
                        M2t.line t "double in_%s[%d];" (sanitize a.Sdf.actor_name)
                          (max a.Sdf.actor_inputs 1);
                        List.iteri
                          (fun i _ ->
                            M2t.line t "in_%s[%d] = %s;" (sanitize a.Sdf.actor_name) i
                              (input (i + 1)))
                          (List.init a.Sdf.actor_inputs (fun i -> i));
                        for p = 1 to a.Sdf.actor_outputs do
                          M2t.line t "double %s = sfun_%s(in_%s, %d, %d);" (out_var a p)
                            (sanitize fn) (sanitize a.Sdf.actor_name) a.Sdf.actor_inputs
                            (p - 1)
                        done
                    | B.Inport | B.Outport | B.Subsystem | B.Channel ->
                        invalid_arg "gen_systemc: structural block in a thread body");
                    if not (is_delay a) then
                      Sdf.succs sdf a.Sdf.actor_name
                      |> List.iter (fun e ->
                             match fifo_for e with
                             | Some v ->
                                 M2t.line t "%s.write(%s);" v (out_var a e.Sdf.edge_src_port)
                             | None -> ()))
                  mine);
            M2t.line t "}");
        M2t.line t "}";
        M2t.blank t;
        M2t.line t "SC_CTOR(%s) { SC_THREAD(behaviour); }" module_name);
    M2t.line t "};";
    M2t.blank t
  in
  List.iter emit_worker workers;
  (* Environment module: feeds top-level inports, drains outports. *)
  let env_inputs =
    List.filter
      (fun n ->
        (actor n).Sdf.actor_block.S.blk_type = B.Inport && (actor n).Sdf.actor_path = [])
      order
  in
  let env_ports =
    fifos
    |> List.filter_map (fun (v, _, (e : Sdf.edge)) ->
           let src = actor e.Sdf.edge_src and dst = actor e.Sdf.edge_dst in
           if owner_of src = Env then Some (v, `Out)
           else if owner_of dst = Env then Some (v, `In)
           else None)
  in
  M2t.line t "SC_MODULE(Environment) {";
  M2t.indented t (fun () ->
      List.iter
        (fun (v, dir) ->
          match dir with
          | `In -> M2t.line t "sc_fifo_in<double> %s;" v
          | `Out -> M2t.line t "sc_fifo_out<double> %s;" v)
        env_ports;
      M2t.line t "void behaviour() {";
      M2t.indented t (fun () ->
          M2t.line t "for (int round = 0; round < ROUNDS; ++round) {";
          M2t.indented t (fun () ->
              List.iter
                (fun name ->
                  let a = actor name in
                  let h = Hashtbl.hash a.Sdf.actor_name mod 10 in
                  M2t.line t "double %s = std::sin((round + %d.0) / 5.0);" (out_var a 1) h;
                  Sdf.succs sdf a.Sdf.actor_name
                  |> List.iter (fun e ->
                         match fifo_for e with
                         | Some v -> M2t.line t "%s.write(%s);" v (out_var a 1)
                         | None -> ()))
                env_inputs;
              List.iter
                (fun name ->
                  let a = actor name in
                  match Sdf.preds sdf a.Sdf.actor_name with
                  | e :: _ -> (
                      match fifo_for e with
                      | Some v ->
                          M2t.line t
                            "std::printf(\"%s %%d %%.9f\\n\", round, %s.read());"
                            (sanitize a.Sdf.actor_name) v
                      | None -> ())
                  | [] -> ())
                sdf.Sdf.graph_outputs);
          M2t.line t "}";
          M2t.line t "sc_stop();");
      M2t.line t "}";
      M2t.blank t;
      M2t.line t "SC_CTOR(Environment) { SC_THREAD(behaviour); }");
  M2t.line t "};";
  M2t.blank t;
  (* Top level. *)
  M2t.line t "int sc_main(int, char **) {";
  M2t.indented t (fun () ->
      List.iter
        (fun (v, protocol, (e : Sdf.edge)) ->
          M2t.line t "sc_fifo<double> %s(64); // %s: %s -> %s" v protocol e.Sdf.edge_src
            e.Sdf.edge_dst)
        fifos;
      List.iter
        (fun (cpu, thread) ->
          let module_name = Printf.sprintf "Thread_%s_%s" (sanitize cpu) (sanitize thread) in
          let inst = Printf.sprintf "i_%s_%s" (sanitize cpu) (sanitize thread) in
          M2t.line t "%s %s(\"%s\");" module_name inst inst;
          fifos
          |> List.iter (fun (v, _, (e : Sdf.edge)) ->
                 let src_owner = owner_of (actor e.Sdf.edge_src) in
                 let dst_owner = owner_of (actor e.Sdf.edge_dst) in
                 if src_owner = Worker (cpu, thread) || dst_owner = Worker (cpu, thread)
                 then M2t.line t "%s.%s(%s);" inst v v))
        workers;
      M2t.line t "Environment env(\"env\");";
      List.iter (fun (v, _) -> M2t.line t "env.%s(%s);" v v) env_ports;
      M2t.line t "sc_start();";
      M2t.line t "return 0;");
  M2t.line t "}";
  M2t.contents t

let save ?rounds m ~dir =
  let oc = open_out (Filename.concat dir "model_sc.cpp") in
  output_string oc (generate ?rounds m);
  close_out oc
