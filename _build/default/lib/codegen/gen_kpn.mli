(** Kahn-process-network code generation — the remaining §3 mapping
    target ("the proposed transformation approach can be extended to
    support mappings to other languages, such as ... KPN").

    Emits a self-contained OCaml source file that reconstructs the
    flattened CAAM as a process network over
    [Umlfront_dataflow.Kpn]: one process per actor, one channel per
    edge, UnitDelays primed with their initial conditions.  The tests
    check the emitted program names every actor and channel and that
    its in-memory equivalent ([Kpn.of_sdf]) reproduces the reference
    executor. *)

val generate : ?rounds:int -> Umlfront_simulink.Model.t -> string
val save : ?rounds:int -> Umlfront_simulink.Model.t -> dir:string -> unit
(** Writes [model_kpn.ml] into [dir]. *)
