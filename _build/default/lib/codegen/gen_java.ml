module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module M2t = Umlfront_transform.M2t

let sanitize = Gen_threads.sanitize

type owner = Env | Worker of string * string

let owner_of (a : Sdf.actor) =
  match a.Sdf.actor_path with
  | [] -> Env
  | [ cpu ] -> Worker (cpu, "main")
  | cpu :: thread :: _ -> Worker (cpu, thread)

let is_delay (a : Sdf.actor) = a.Sdf.actor_block.S.blk_type = B.Unit_delay

let param_float (blk : S.block) key fallback =
  match List.assoc_opt key blk.S.blk_params with
  | Some (B.P_float f) -> f
  | Some (B.P_int i) -> float_of_int i
  | Some _ | None -> fallback

let out_var a port = Printf.sprintf "v_%s_%d" (sanitize a.Sdf.actor_name) port
let state_var a = Printf.sprintf "state_%s" (sanitize a.Sdf.actor_name)
let snapshot_var a = Printf.sprintf "snap_%s" (sanitize a.Sdf.actor_name)

let generate ?(rounds = 10) ?(class_name = "GeneratedModel") (m : Model.t) =
  let sdf = Sdf.of_model m in
  let order = Exec.firing_order sdf in
  let actor name = Option.get (Sdf.find_actor sdf name) in
  (* Cross-thread edges get queues. *)
  let counter = ref 0 in
  let queues =
    sdf.Sdf.edges
    |> List.filter_map (fun (e : Sdf.edge) ->
           let src = actor e.Sdf.edge_src and dst = actor e.Sdf.edge_dst in
           if owner_of src = owner_of dst then None
           else (
             incr counter;
             let protocol =
               let ps = List.map snd e.Sdf.edge_channels in
               if List.mem "GFIFO" ps then "GFIFO"
               else "SWFIFO"
             in
             Some (Printf.sprintf "f%d" !counter, protocol, e)))
  in
  let queue_for e =
    List.find_opt (fun (_, _, qe) -> qe = e) queues |> Option.map (fun (v, _, _) -> v)
  in
  let t = M2t.create ~indent_step:2 () in
  M2t.line t "/* Generated from CAAM model %s. */" m.Model.model_name;
  M2t.line t "import java.util.concurrent.ArrayBlockingQueue;";
  M2t.blank t;
  M2t.line t "public final class %s {" class_name;
  M2t.indented t (fun () ->
      M2t.line t "static final int ROUNDS = %d;" rounds;
      List.iter
        (fun (v, protocol, (e : Sdf.edge)) ->
          M2t.line t
            "static final ArrayBlockingQueue<Double> %s = new ArrayBlockingQueue<>(64); // %s: %s -> %s"
            v protocol e.Sdf.edge_src e.Sdf.edge_dst)
        queues;
      List.iter
        (fun (a : Sdf.actor) ->
          if is_delay a then
            M2t.line t "static double %s = %.17g;" (state_var a)
              (param_float a.Sdf.actor_block "InitialCondition" 0.0))
        sdf.Sdf.actors;
      M2t.blank t;
      M2t.line t "static double sfun(String name, double a, double b, double[] in) {";
      M2t.indented t (fun () ->
          M2t.line t "double total = 0.0;";
          M2t.line t "for (double x : in) total += x;";
          M2t.line t "return a * total + b;");
      M2t.line t "}";
      (* Worker methods. *)
      let workers =
        List.filter_map
          (fun name ->
            match owner_of (actor name) with Worker (c, th) -> Some (c, th) | Env -> None)
          order
        |> List.fold_left (fun acc o -> if List.mem o acc then acc else o :: acc) []
        |> List.rev
      in
      let input_expr popped (a : Sdf.actor) port =
        let feeding =
          Sdf.preds sdf a.Sdf.actor_name
          |> List.find_opt (fun (e : Sdf.edge) -> e.Sdf.edge_dst_port = port)
        in
        match feeding with
        | None -> "0.0"
        | Some e -> (
            match queue_for e with
            | Some q -> (
                match List.assoc_opt q popped with Some tmp -> tmp | None -> q ^ ".take()")
            | None ->
                let src = actor e.Sdf.edge_src in
                if is_delay src then snapshot_var src else out_var src e.Sdf.edge_src_port)
      in
      let emit_actor (a : Sdf.actor) =
        let blk = a.Sdf.actor_block in
        let popped =
          Sdf.preds sdf a.Sdf.actor_name
          |> List.filter_map (fun (e : Sdf.edge) ->
                 match queue_for e with
                 | Some q ->
                     let tmp =
                       Printf.sprintf "p_%s_%d" (sanitize a.Sdf.actor_name)
                         e.Sdf.edge_dst_port
                     in
                     M2t.line t "double %s = %s.take();" tmp q;
                     Some (q, tmp)
                 | None -> None)
        in
        let input port = input_expr popped a port in
        let simple_out expr = M2t.line t "double %s = %s;" (out_var a 1) expr in
        (match blk.S.blk_type with
        | B.Constant -> simple_out (Printf.sprintf "%.17g" (param_float blk "Value" 0.0))
        | B.Ground -> simple_out "0.0"
        | B.Gain ->
            simple_out (Printf.sprintf "%.17g * %s" (param_float blk "Gain" 1.0) (input 1))
        | B.Product ->
            if a.Sdf.actor_inputs = 0 then simple_out "1.0"
            else
              simple_out
                (String.concat " * "
                   (List.init a.Sdf.actor_inputs (fun i -> input (i + 1))))
        | B.Sum ->
            let signs =
              match S.param_string blk "Inputs" with
              | Some s when String.length s = a.Sdf.actor_inputs ->
                  List.init a.Sdf.actor_inputs (fun i -> s.[i])
              | Some _ | None -> List.init a.Sdf.actor_inputs (fun _ -> '+')
            in
            let terms =
              List.mapi
                (fun i sign ->
                  Printf.sprintf "%c (%s)" (if sign = '-' then '-' else '+')
                    (input (i + 1)))
                signs
            in
            simple_out (if terms = [] then "0.0" else "0.0 " ^ String.concat " " terms)
        | B.Saturation ->
            let hi = param_float blk "UpperLimit" 1.0 in
            let lo = param_float blk "LowerLimit" (-1.0) in
            simple_out
              (Printf.sprintf "Math.min(%.17g, Math.max(%.17g, %s))" hi lo (input 1))
        | B.Switch ->
            let threshold = param_float blk "Threshold" 0.0 in
            simple_out
              (Printf.sprintf "(%s) >= %.17g ? (%s) : (%s)" (input 2) threshold (input 1)
                 (input 3))
        | B.Abs -> simple_out (Printf.sprintf "Math.abs(%s)" (input 1))
        | B.Sqrt -> simple_out (Printf.sprintf "Math.sqrt(%s)" (input 1))
        | B.Trig ->
            let fn =
              match S.param_string blk "Function" with
              | Some ("cos" | "tan") as f -> Option.get f
              | Some _ | None -> "sin"
            in
            simple_out (Printf.sprintf "Math.%s(%s)" fn (input 1))
        | B.Min_max ->
            let fn =
              if S.param_string blk "Function" = Some "min" then "Math.min" else "Math.max"
            in
            let rec fold i acc =
              if i > a.Sdf.actor_inputs then acc
              else fold (i + 1) (Printf.sprintf "%s(%s, %s)" fn acc (input i))
            in
            simple_out (if a.Sdf.actor_inputs = 0 then "0.0" else fold 2 (input 1))
        | B.Math ->
            let fn = if S.param_string blk "Function" = Some "log" then "Math.log" else "Math.exp" in
            simple_out (Printf.sprintf "%s(%s)" fn (input 1))
        | B.Mux -> simple_out (input 1)
        | B.Demux ->
            for p = 1 to a.Sdf.actor_outputs do
              M2t.line t "double %s = %s;" (out_var a p) (input 1)
            done
        | B.Terminator -> M2t.line t "double unused_%s = %s;" (sanitize a.Sdf.actor_name) (input 1)
        | B.Unit_delay -> M2t.line t "%s = %s;" (state_var a) (input 1)
        | B.S_function ->
            let fn =
              Option.value (S.param_string blk "FunctionName") ~default:blk.S.blk_name
            in
            let ca, cb =
              let h = Hashtbl.hash fn in
              (0.25 +. (float_of_int (h mod 7) /. 8.0), float_of_int (h mod 13) /. 13.0)
            in
            let args =
              String.concat ", " (List.init a.Sdf.actor_inputs (fun i -> input (i + 1)))
            in
            for p = 1 to a.Sdf.actor_outputs do
              M2t.line t "double %s = sfun(\"%s\", %.17g, %.17g, new double[]{%s}) + 0.1 * %d;"
                (out_var a p) fn ca cb args (p - 1)
            done
        | B.Inport | B.Outport | B.Subsystem | B.Channel ->
            invalid_arg "gen_java: structural block in a thread body");
        if not (is_delay a) then
          Sdf.succs sdf a.Sdf.actor_name
          |> List.iter (fun (e : Sdf.edge) ->
                 match queue_for e with
                 | Some q -> M2t.line t "%s.put(%s);" q (out_var a e.Sdf.edge_src_port)
                 | None -> ())
      in
      List.iter
        (fun (cpu, thread) ->
          let mine =
            List.filter (fun name -> owner_of (actor name) = Worker (cpu, thread)) order
          in
          M2t.blank t;
          M2t.line t "static void run_%s_%s() throws InterruptedException {" (sanitize cpu)
            (sanitize thread);
          M2t.indented t (fun () ->
              M2t.line t "for (int round = 0; round < ROUNDS; ++round) {";
              M2t.indented t (fun () ->
                  List.iter
                    (fun name ->
                      let a = actor name in
                      if is_delay a then (
                        M2t.line t "double %s = %s;" (snapshot_var a) (state_var a);
                        Sdf.succs sdf a.Sdf.actor_name
                        |> List.iter (fun (e : Sdf.edge) ->
                               match queue_for e with
                               | Some q -> M2t.line t "%s.put(%s);" q (snapshot_var a)
                               | None -> ())))
                    mine;
                  List.iter (fun name -> emit_actor (actor name)) mine);
              M2t.line t "}");
          M2t.line t "}")
        workers;
      (* main *)
      let env_inputs =
        List.filter
          (fun name ->
            (actor name).Sdf.actor_block.S.blk_type = B.Inport
            && (actor name).Sdf.actor_path = [])
          order
      in
      M2t.blank t;
      M2t.line t "public static void main(String[] args) throws InterruptedException {";
      M2t.indented t (fun () ->
          M2t.line t "Thread[] workers = new Thread[%d];" (List.length workers);
          List.iteri
            (fun i (cpu, thread) ->
              M2t.line t
                "workers[%d] = new Thread(() -> { try { run_%s_%s(); } catch (InterruptedException e) { Thread.currentThread().interrupt(); } });"
                i (sanitize cpu) (sanitize thread))
            workers;
          M2t.line t "for (Thread w : workers) w.start();";
          M2t.line t "for (int round = 0; round < ROUNDS; ++round) {";
          M2t.indented t (fun () ->
              List.iter
                (fun name ->
                  let a = actor name in
                  let h = Hashtbl.hash a.Sdf.actor_name mod 10 in
                  M2t.line t "double %s = Math.sin((round + %d.0) / 5.0);" (out_var a 1) h;
                  Sdf.succs sdf a.Sdf.actor_name
                  |> List.iter (fun (e : Sdf.edge) ->
                         match queue_for e with
                         | Some q -> M2t.line t "%s.put(%s);" q (out_var a 1)
                         | None -> ()))
                env_inputs;
              List.iter
                (fun name ->
                  let a = actor name in
                  let expr =
                    match Sdf.preds sdf a.Sdf.actor_name with
                    | e :: _ -> (
                        match queue_for e with
                        | Some q -> q ^ ".take()"
                        | None -> "0.0")
                    | [] -> "0.0"
                  in
                  M2t.line t "System.out.printf(\"%s %%d %%.9f%%n\", round, %s);"
                    (sanitize a.Sdf.actor_name) expr)
                sdf.Sdf.graph_outputs);
          M2t.line t "}";
          M2t.line t "for (Thread w : workers) w.join();");
      M2t.line t "}");
  M2t.line t "}";
  M2t.contents t

let save ?rounds ?(class_name = "GeneratedModel") m ~dir =
  let content = generate ?rounds ~class_name m in
  let oc = open_out (Filename.concat dir (class_name ^ ".java")) in
  output_string oc content;
  close_out oc
