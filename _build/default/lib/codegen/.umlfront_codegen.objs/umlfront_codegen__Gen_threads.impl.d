lib/codegen/gen_threads.ml: Fifo_runtime Filename Hashtbl List Option Printf String Umlfront_dataflow Umlfront_simulink Umlfront_transform
