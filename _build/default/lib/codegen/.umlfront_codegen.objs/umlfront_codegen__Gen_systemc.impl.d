lib/codegen/gen_systemc.ml: Filename Gen_threads Hashtbl List Option Printf String Umlfront_dataflow Umlfront_simulink Umlfront_transform
