lib/codegen/gen_threads.mli: Umlfront_simulink
