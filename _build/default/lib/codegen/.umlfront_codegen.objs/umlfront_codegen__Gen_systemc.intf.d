lib/codegen/gen_systemc.mli: Umlfront_simulink
