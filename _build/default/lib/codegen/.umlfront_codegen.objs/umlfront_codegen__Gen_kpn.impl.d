lib/codegen/gen_kpn.ml: Filename Gen_threads List Printf String Umlfront_dataflow Umlfront_simulink Umlfront_transform
