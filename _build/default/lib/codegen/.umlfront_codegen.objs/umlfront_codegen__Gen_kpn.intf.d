lib/codegen/gen_kpn.mli: Umlfront_simulink
