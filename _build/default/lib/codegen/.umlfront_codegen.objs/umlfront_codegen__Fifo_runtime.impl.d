lib/codegen/fifo_runtime.ml: Filename
