lib/codegen/fifo_runtime.mli:
