lib/codegen/gen_java.ml: Filename Gen_threads Hashtbl List Option Printf String Umlfront_dataflow Umlfront_simulink Umlfront_transform
