lib/codegen/gen_java.mli: Umlfront_simulink
