(** SystemC code generation from a CAAM: one [SC_MODULE] per Thread-SS
    with an [SC_THREAD] process, [sc_fifo<double>] channels for the
    inferred SWFIFO/GFIFO links, and a top-level module instantiating
    the platform — the ESL flavour of the multithreaded backend (the
    paper positions UML/Simulink within ESL design, refs [5,14]).

    The output is self-contained C++ against the standard SystemC 2.3
    API; it is emitted for inspection and downstream use, not compiled
    here (the container has no SystemC installation). *)

val generate : ?rounds:int -> Umlfront_simulink.Model.t -> string
(** One [main.cpp]-style translation unit. *)

val save : ?rounds:int -> Umlfront_simulink.Model.t -> dir:string -> unit
(** Writes [model_sc.cpp] into [dir]. *)
