let header =
  {|#ifndef UMLFRONT_FIFO_H
#define UMLFRONT_FIFO_H

#include <pthread.h>

#define FIFO_MAX_CAPACITY 64

typedef struct {
  double buffer[FIFO_MAX_CAPACITY];
  int head;
  int count;
  int capacity; /* <= FIFO_MAX_CAPACITY; the channel's Depth */
  const char *protocol; /* "SWFIFO" or "GFIFO" */
  pthread_mutex_t lock;
  pthread_cond_t not_empty;
  pthread_cond_t not_full;
} fifo_t;

/* Intra-CPU software FIFO. */
void swfifo_init(fifo_t *f, int capacity);
/* Inter-CPU (bus) FIFO; same semantics, kept distinct to mirror the
   CAAM protocol annotation. */
void gfifo_init(fifo_t *f, int capacity);

void fifo_push(fifo_t *f, double value); /* blocks when full */
double fifo_pop(fifo_t *f);              /* blocks when empty */
int fifo_size(fifo_t *f);

#endif /* UMLFRONT_FIFO_H */
|}

let source =
  {|#include "fifo.h"

static void fifo_init_common(fifo_t *f, const char *protocol, int capacity) {
  f->head = 0;
  f->count = 0;
  f->capacity =
      capacity > 0 && capacity <= FIFO_MAX_CAPACITY ? capacity : FIFO_MAX_CAPACITY;
  f->protocol = protocol;
  pthread_mutex_init(&f->lock, 0);
  pthread_cond_init(&f->not_empty, 0);
  pthread_cond_init(&f->not_full, 0);
}

void swfifo_init(fifo_t *f, int capacity) { fifo_init_common(f, "SWFIFO", capacity); }
void gfifo_init(fifo_t *f, int capacity) { fifo_init_common(f, "GFIFO", capacity); }

void fifo_push(fifo_t *f, double value) {
  pthread_mutex_lock(&f->lock);
  while (f->count == f->capacity)
    pthread_cond_wait(&f->not_full, &f->lock);
  f->buffer[(f->head + f->count) % FIFO_MAX_CAPACITY] = value;
  f->count++;
  pthread_cond_signal(&f->not_empty);
  pthread_mutex_unlock(&f->lock);
}

double fifo_pop(fifo_t *f) {
  pthread_mutex_lock(&f->lock);
  while (f->count == 0)
    pthread_cond_wait(&f->not_empty, &f->lock);
  double value = f->buffer[f->head];
  f->head = (f->head + 1) % FIFO_MAX_CAPACITY;
  f->count--;
  pthread_cond_signal(&f->not_full);
  pthread_mutex_unlock(&f->lock);
  return value;
}

int fifo_size(fifo_t *f) {
  pthread_mutex_lock(&f->lock);
  int n = f->count;
  pthread_mutex_unlock(&f->lock);
  return n;
}
|}

let save ~dir =
  let write name content =
    let oc = open_out (Filename.concat dir name) in
    output_string oc content;
    close_out oc
  in
  write "fifo.h" header;
  write "fifo.c" source
