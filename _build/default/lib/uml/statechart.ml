type state = {
  st_name : string;
  st_kind : state_kind;
  st_entry : string option;
  st_exit : string option;
  st_history : history;
  st_children : state list;
}

and state_kind = Simple | Initial | Final | Composite
and history = No_history | Shallow | Deep

type transition = {
  tr_source : string;
  tr_target : string;
  tr_trigger : string option;
  tr_guard : string option;
  tr_effect : string option;
}

type t = {
  sc_name : string;
  sc_states : state list;
  sc_transitions : transition list;
}

let state ?(kind = Simple) ?entry ?exit ?(history = No_history) ?(children = []) name =
  let kind = if children <> [] then Composite else kind in
  {
    st_name = name;
    st_kind = kind;
    st_entry = entry;
    st_exit = exit;
    st_history = history;
    st_children = children;
  }

let transition ?trigger ?guard ?effect ~source ~target () =
  { tr_source = source; tr_target = target; tr_trigger = trigger;
    tr_guard = guard; tr_effect = effect }

let make sc_name sc_states sc_transitions = { sc_name; sc_states; sc_transitions }

let all_states t =
  let rec walk s = s :: List.concat_map walk s.st_children in
  List.concat_map walk t.sc_states

let find_state t name =
  List.find_opt (fun s -> String.equal s.st_name name) (all_states t)

let initial_state t = List.find_opt (fun s -> s.st_kind = Initial) t.sc_states

let events t =
  t.sc_transitions
  |> List.filter_map (fun tr -> tr.tr_trigger)
  |> List.sort_uniq compare

type issue = { where : string; what : string }

let check t =
  let issues = ref [] in
  let blame where what = issues := { where; what } :: !issues in
  let seen = Hashtbl.create 16 in
  let rec walk (s : state) =
    if Hashtbl.mem seen s.st_name then blame s.st_name "duplicate state name";
    Hashtbl.replace seen s.st_name ();
    if s.st_history <> No_history && s.st_children = [] then
      blame s.st_name "history on a non-composite state";
    if s.st_kind = Initial && (s.st_entry <> None || s.st_exit <> None) then
      blame s.st_name "initial pseudo-state cannot have entry/exit actions";
    let initials =
      List.filter (fun (c : state) -> c.st_kind = Initial) s.st_children
    in
    if List.length initials > 1 then
      blame s.st_name "more than one initial pseudo-state";
    List.iter walk s.st_children
  in
  List.iter walk t.sc_states;
  if
    List.length (List.filter (fun (s : state) -> s.st_kind = Initial) t.sc_states) > 1
  then blame t.sc_name "more than one top-level initial pseudo-state";
  List.iter
    (fun (tr : transition) ->
      if not (Hashtbl.mem seen tr.tr_source) then
        blame tr.tr_source "transition source not declared";
      if not (Hashtbl.mem seen tr.tr_target) then
        blame tr.tr_target "transition target not declared")
    t.sc_transitions;
  Hashtbl.iter
    (fun name () ->
      match
        List.find_opt (fun (s : state) -> String.equal s.st_name name) (all_states t)
      with
      | Some s when s.st_kind = Initial ->
          let outgoing =
            List.filter
              (fun (tr : transition) ->
                String.equal tr.tr_source name && tr.tr_trigger = None)
              t.sc_transitions
          in
          if List.length outgoing <> 1 then
            blame name "initial pseudo-state needs exactly one completion transition"
      | Some _ | None -> ())
    seen;
  List.rev !issues

let kind_label = function
  | Simple -> ""
  | Initial -> " (initial)"
  | Final -> " (final)"
  | Composite -> " (composite)"

let pp ppf t =
  Format.fprintf ppf "@[<v>statechart %s" t.sc_name;
  let rec pp_state indent s =
    Format.fprintf ppf "@,%sstate %s%s" indent s.st_name (kind_label s.st_kind);
    List.iter (pp_state (indent ^ "  ")) s.st_children
  in
  List.iter (pp_state "  ") t.sc_states;
  List.iter
    (fun tr ->
      Format.fprintf ppf "@,  %s -> %s%s%s%s" tr.tr_source tr.tr_target
        (match tr.tr_trigger with Some e -> " on " ^ e | None -> "")
        (match tr.tr_guard with Some g -> " [" ^ g ^ "]" | None -> "")
        (match tr.tr_effect with Some a -> " / " ^ a | None -> ""))
    t.sc_transitions;
  Format.fprintf ppf "@]"
