(** Well-formedness checks a UML model must pass before the mapping
    runs (the constraints §4.1 assumes). *)

type issue = { where : string; what : string }

val check : Model.t -> issue list
(** Empty list means the model is mappable.  Checked:
    - every message endpoint names a declared instance;
    - every called operation exists on the callee class (except calls
      to Platform objects, which fall back to library lookup);
    - thread-to-thread calls use the [Set]/[Get] naming convention;
    - calls to [<<IO>>] objects use the [get]/[set] convention;
    - when a deployment is present, every thread is allocated exactly
      once and every allocation target is a declared node;
    - actual argument lists match formal [In] parameter counts;
    - every consumed data token is produced somewhere in the diagram
      (order-independent: feedback is legal and later broken by the
      temporal-barrier pass);
    - every token a thread consumes is available inside that thread
      (own result binding, Get, IO read, or a Set delivery), since the
      mapping can only wire thread-local ports. *)

val check_exn : Model.t -> unit
(** @raise Invalid_argument listing the first issue. *)

val pp_issue : Format.formatter -> issue -> unit
