(** Mutable builder for assembling UML models programmatically (the
    role MagicDraw plays in the paper's flow: step 1 of Fig. 2). *)

type t

val create : string -> t

(** {1 Classes and objects} *)

val add_class : t -> Classifier.cls -> unit

val thread : t -> string -> unit
(** Declares a thread class [<name>_cls] and an active instance
    [name] in one step. *)

val passive_object :
  t -> ?operations:Operation.t list -> cls:string -> string -> unit
(** Declares (or reuses) a passive class and an instance of it. *)

val platform : t -> string -> unit
(** Declares the special Platform object standing for the block
    library. *)

val io_device : t -> ?operations:Operation.t list -> string -> unit

val operation : t -> cls:string -> Operation.t -> unit
(** Adds an operation to an already-declared class. *)

(** {1 Deployment} *)

val cpu : t -> string -> unit
val bus : t -> string -> unit
val allocate : t -> thread:string -> cpu:string -> unit

(** {1 Sequence diagrams} *)

val sequence : t -> string -> unit
(** Opens a sequence diagram; subsequent {!call}s append to it. *)

val call :
  t ->
  ?sd:string ->
  ?args:Sequence.arg list ->
  ?result:Sequence.arg ->
  ?outs:Sequence.arg list ->
  from:string ->
  target:string ->
  string ->
  unit
(** Appends a message.  When the callee class does not yet declare the
    operation, a formal operation is inferred from the actual
    arguments ([In] parameters) and the result ([Return]). *)

(** {1 Activity diagrams} *)

val activity : t -> Activity.t -> unit
(** Registers an activity diagram; formal operations are inferred on
    the callee classes of its actions, as {!call} does. *)

(** {1 State machines} *)

val statechart : t -> Statechart.t -> unit

(** {1 Finishing} *)

val finish : t -> Model.t
(** Assemble the immutable model.  Deployment is emitted only when at
    least one CPU was declared. *)
