type arg = { arg_name : string; arg_type : Datatype.t }

type message = {
  msg_from : string;
  msg_to : string;
  msg_operation : string;
  msg_args : arg list;
  msg_result : arg option;
  msg_outs : arg list;
}

type t = { sd_name : string; sd_messages : message list }

let arg arg_name arg_type = { arg_name; arg_type }

let message ?(args = []) ?result ?(outs = []) ~from ~target operation =
  {
    msg_from = from;
    msg_to = target;
    msg_operation = operation;
    msg_args = args;
    msg_result = result;
    msg_outs = outs;
  }

let make sd_name sd_messages = { sd_name; sd_messages }

let lifelines t =
  let add acc name = if List.mem name acc then acc else name :: acc in
  List.fold_left
    (fun acc m -> add (add acc m.msg_from) m.msg_to)
    [] t.sd_messages
  |> List.rev

let messages_from t lifeline =
  List.filter (fun m -> String.equal m.msg_from lifeline) t.sd_messages

let messages_between t ~src ~dst =
  List.filter
    (fun m -> String.equal m.msg_from src && String.equal m.msg_to dst)
    t.sd_messages

let has_prefix prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let is_send m = has_prefix "Set" m.msg_operation
let is_receive m = has_prefix "Get" m.msg_operation
let is_io_read m = has_prefix "get" m.msg_operation
let is_io_write m = has_prefix "set" m.msg_operation

let transferred_bytes m =
  let sum = List.fold_left (fun n a -> n + Datatype.size_bytes a.arg_type) 0 in
  let result =
    match m.msg_result with Some a -> Datatype.size_bytes a.arg_type | None -> 0
  in
  sum m.msg_args + result + sum m.msg_outs

let pp_arg ppf a = Format.fprintf ppf "%s:%a" a.arg_name Datatype.pp a.arg_type

let pp_message ppf m =
  Format.fprintf ppf "%s -> %s : %s(%a)" m.msg_from m.msg_to m.msg_operation
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_arg)
    m.msg_args;
  (match m.msg_result with
  | Some r -> Format.fprintf ppf " = %a" pp_arg r
  | None -> ());
  match m.msg_outs with
  | [] -> ()
  | outs ->
      Format.fprintf ppf " outs(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_arg)
        outs

let pp ppf t =
  Format.fprintf ppf "@[<v>sequence %s" t.sd_name;
  List.iter (fun m -> Format.fprintf ppf "@,  %a" pp_message m) t.sd_messages;
  Format.fprintf ppf "@]"
