type kind = Thread | Passive | Platform | Io_device

type cls = {
  cls_name : string;
  cls_kind : kind;
  cls_stereotypes : Stereotype.t list;
  cls_operations : Operation.t list;
}

type instance = { inst_name : string; inst_class : string }

let implied_stereotypes = function
  | Thread -> [ Stereotype.Sa_sched_res ]
  | Io_device -> [ Stereotype.Io ]
  | Passive | Platform -> []

let cls ?(stereotypes = []) ?(operations = []) kind name =
  let implied = implied_stereotypes kind in
  let extra = List.filter (fun s -> not (List.mem s implied)) stereotypes in
  {
    cls_name = name;
    cls_kind = kind;
    cls_stereotypes = implied @ extra;
    cls_operations = operations;
  }

let instance name c = { inst_name = name; inst_class = c.cls_name }

let find_operation c name =
  List.find_opt (fun op -> String.equal op.Operation.op_name name) c.cls_operations

let kind_to_string = function
  | Thread -> "thread"
  | Passive -> "passive"
  | Platform -> "platform"
  | Io_device -> "io"

let kind_of_string = function
  | "thread" -> Thread
  | "passive" -> Passive
  | "platform" -> Platform
  | "io" -> Io_device
  | s -> invalid_arg (Printf.sprintf "Classifier.kind_of_string: %S" s)

let pp_cls ppf c =
  Format.fprintf ppf "@[<v>class %s (%s)" c.cls_name (kind_to_string c.cls_kind);
  List.iter (fun s -> Format.fprintf ppf " %a" Stereotype.pp s) c.cls_stereotypes;
  List.iter (fun op -> Format.fprintf ppf "@,  %a" Operation.pp op) c.cls_operations;
  Format.fprintf ppf "@]"
