type t = Sa_engine | Sa_sched_res | Io | Custom of string

let to_string = function
  | Sa_engine -> "SAengine"
  | Sa_sched_res -> "SASchedRes"
  | Io -> "IO"
  | Custom s -> s

let of_string = function
  | "SAengine" -> Sa_engine
  | "SASchedRes" -> Sa_sched_res
  | "IO" -> Io
  | s -> Custom s

let equal (a : t) (b : t) = a = b
let pp ppf t = Format.fprintf ppf "<<%s>>" (to_string t)
