(** UML stereotypes used by the design flow.

    [Sa_engine] and [Sa_sched_res] come from the UML-SPT profile and
    mark processors and threads in the deployment diagram; [Io] is the
    stereotype the paper introduces to mark environment-interface
    objects (§4.1). *)

type t =
  | Sa_engine  (** [<<SAengine>>] — a processor *)
  | Sa_sched_res  (** [<<SASchedRes>>] — a schedulable resource (thread) *)
  | Io  (** [<<IO>>] — communication with external systems *)
  | Custom of string

val to_string : t -> string
(** Guillemet-free profile name, e.g. ["SAengine"]. *)

val of_string : string -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
