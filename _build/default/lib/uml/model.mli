(** A whole UML model: classes, object instances, deployment diagrams,
    sequence diagrams and state machines. *)

type t = {
  model_name : string;
  classes : Classifier.cls list;
  instances : Classifier.instance list;
  deployments : Deployment.t list;
  sequences : Sequence.t list;
  activities : Activity.t list;
  statecharts : Statechart.t list;
}

val make :
  ?classes:Classifier.cls list ->
  ?instances:Classifier.instance list ->
  ?deployments:Deployment.t list ->
  ?sequences:Sequence.t list ->
  ?activities:Activity.t list ->
  ?statecharts:Statechart.t list ->
  string ->
  t

val find_class : t -> string -> Classifier.cls option
val find_instance : t -> string -> Classifier.instance option

val class_of_instance : t -> string -> Classifier.cls option
(** Class of the named object instance. *)

val kind_of_instance : t -> string -> Classifier.kind option

val threads : t -> string list
(** Names of all thread ([<<SASchedRes>>]) instances, in declaration
    order. *)

val deployment : t -> Deployment.t option
(** The first deployment diagram, if any (the mapping uses one). *)

val operation_of_message : t -> Sequence.message -> Operation.t option
(** Resolve a message to the formal operation on the callee's class. *)

val behaviours : t -> Sequence.t list
(** The sequence diagrams plus, when activity diagrams are present, one
    synthetic diagram linearizing them ({!Activity.to_sequence}) — what
    the mapping and the allocation optimization actually consume. *)

val stats : t -> (string * int) list
(** Element counts per diagram kind, for reports. *)

val pp : Format.formatter -> t -> unit
