(** UML activity diagrams — the alternative behaviour notation the
    paper names as future work (§6: "other behavior diagrams could also
    be used by a designer ... such as activity diagrams").

    An activity describes one thread's behaviour as a control-flow
    graph of {e call actions}; the mapping consumes it by linearizing
    the actions into the same call sequence a sequence diagram would
    give (data links still come from token reuse). *)

type node =
  | Initial of string
  | Final of string
  | Action of action
  | Fork of string
  | Join of string
  | Decision of string
  | Merge of string

and action = {
  act_name : string;
  act_target : string;  (** callee object instance *)
  act_operation : string;
  act_args : Sequence.arg list;
  act_result : Sequence.arg option;
}

type edge = { edge_source : string; edge_target : string; edge_guard : string option }

type t = {
  act_diagram_name : string;
  act_owner : string;  (** the thread whose behaviour this is *)
  act_nodes : node list;
  act_edges : edge list;
}

val node_name : node -> string

val action :
  ?args:Sequence.arg list ->
  ?result:Sequence.arg ->
  name:string ->
  target:string ->
  string ->
  node

val edge : ?guard:string -> source:string -> target:string -> unit -> edge

val make : name:string -> owner:string -> node list -> edge list -> t

type issue = { where : string; what : string }

val check : t -> issue list
(** Well-formedness: exactly one initial node, edges reference declared
    nodes, every action reachable from the initial node, control flow
    acyclic (loops in behaviour are expressed by data feedback, not by
    control-flow back edges). *)

val to_messages : t -> Sequence.message list
(** Linearize: actions in a topological order of the control-flow graph
    (stable with respect to declaration order), each becoming a call
    message from the owner thread.
    @raise Invalid_argument when {!check} reports issues. *)

val to_sequence : t list -> Sequence.t
(** Merge several threads' activities into one synthetic sequence
    diagram consumable by the mapping. *)

val pp : Format.formatter -> t -> unit
