(** XMI-style XML interchange for UML models (the format the flow's
    step 1 produces from a modeling tool and step 2 consumes). *)

val to_xml : Model.t -> Umlfront_xml.Xml.t
val to_string : Model.t -> string

val of_xml : Umlfront_xml.Xml.t -> Model.t
(** @raise Invalid_argument on a malformed document. *)

val of_string : string -> Model.t
val save : Model.t -> string -> unit
val load : string -> Model.t
