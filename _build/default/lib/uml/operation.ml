type direction = In | Out | Inout | Return

type parameter = {
  param_name : string;
  param_dir : direction;
  param_type : Datatype.t;
}

type t = { op_name : string; op_params : parameter list }

let make ?(params = []) op_name = { op_name; op_params = params }
let param ?(dir = In) param_name param_type = { param_name; param_dir = dir; param_type }

let inputs op =
  List.filter (fun p -> p.param_dir = In || p.param_dir = Inout) op.op_params

let outputs op =
  List.filter
    (fun p -> p.param_dir = Out || p.param_dir = Inout || p.param_dir = Return)
    op.op_params

let return_type op =
  List.find_opt (fun p -> p.param_dir = Return) op.op_params
  |> Option.map (fun p -> p.param_type)

let direction_to_string = function
  | In -> "in"
  | Out -> "out"
  | Inout -> "inout"
  | Return -> "return"

let direction_of_string = function
  | "in" -> In
  | "out" -> Out
  | "inout" -> Inout
  | "return" -> Return
  | s -> invalid_arg (Printf.sprintf "Operation.direction_of_string: %S" s)

let pp ppf op =
  let pp_param ppf p =
    Format.fprintf ppf "%s %s : %a" (direction_to_string p.param_dir) p.param_name
      Datatype.pp p.param_type
  in
  Format.fprintf ppf "%s(%a)" op.op_name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_param)
    op.op_params
