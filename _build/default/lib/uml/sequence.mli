(** Sequence diagrams.

    A diagram is an ordered list of messages between object lifelines.
    Actual arguments are {e named data tokens} (the "r1", "r2", ... of
    the paper's Fig. 3b): when a call binds its return value to a token
    and a later call passes the same token, the mapping creates a data
    link between the corresponding ports (§4.1). *)

type arg = { arg_name : string; arg_type : Datatype.t }

type message = {
  msg_from : string;  (** caller lifeline (object instance name) *)
  msg_to : string;  (** callee lifeline *)
  msg_operation : string;
  msg_args : arg list;  (** actual arguments, in formal-parameter order *)
  msg_result : arg option;  (** token the return value is bound to *)
  msg_outs : arg list;
      (** tokens bound to [out]-direction formal parameters, in
          declaration order — each becomes a further output port
          (paper §4.1: "the direction of method parameters (in/out)
          and the return are translated to input and output ports") *)
}

type t = { sd_name : string; sd_messages : message list }

val arg : string -> Datatype.t -> arg

val message :
  ?args:arg list -> ?result:arg -> ?outs:arg list -> from:string -> target:string ->
  string -> message

val make : string -> message list -> t

val lifelines : t -> string list
(** All distinct lifeline names, in first-appearance order. *)

val messages_from : t -> string -> message list
(** Calls issued by the given lifeline, in diagram order. *)

val messages_between : t -> src:string -> dst:string -> message list

val is_send : message -> bool
(** The operation name carries the [Set] prefix (thread-to-thread send,
    §4.1). *)

val is_receive : message -> bool
(** [Get] prefix. *)

val is_io_read : message -> bool
(** [get] prefix (lowercase), used on [<<IO>>] objects. *)

val is_io_write : message -> bool

val transferred_bytes : message -> int
(** Volume of data moved by this message: arguments plus result. *)

val pp_message : Format.formatter -> message -> unit
val pp : Format.formatter -> t -> unit
