(** UML state machines, used by the control-flow branch of the design
    flow (Fig. 1): event-based subsystems are mapped to FSMs and handed
    to FSM code generators.

    States may be composite (hierarchical); {!Umlfront_fsm.Flatten}
    turns a statechart into a flat FSM. *)

type state = {
  st_name : string;
  st_kind : state_kind;
  st_entry : string option;  (** entry action label *)
  st_exit : string option;
  st_history : history;
      (** re-entry behaviour of a composite: [Shallow] resumes the last
          active direct child (entered at its own default entry),
          [Deep] resumes the exact leaf configuration *)
  st_children : state list;  (** sub-states of a composite state *)
}

and state_kind = Simple | Initial | Final | Composite
and history = No_history | Shallow | Deep

type transition = {
  tr_source : string;
  tr_target : string;
  tr_trigger : string option;  (** event name; [None] = completion *)
  tr_guard : string option;
  tr_effect : string option;  (** action label *)
}

type t = {
  sc_name : string;
  sc_states : state list;
  sc_transitions : transition list;
}

val state :
  ?kind:state_kind -> ?entry:string -> ?exit:string -> ?history:history ->
  ?children:state list -> string -> state

val transition :
  ?trigger:string -> ?guard:string -> ?effect:string ->
  source:string -> target:string -> unit -> transition

val make : string -> state list -> transition list -> t

val all_states : t -> state list
(** Pre-order traversal, composites before their children. *)

val find_state : t -> string -> state option
val initial_state : t -> state option
(** The top-level initial pseudo-state. *)

val events : t -> string list
(** Distinct trigger names, sorted. *)

type issue = { where : string; what : string }

val check : t -> issue list
(** Well-formedness: globally unique state names, transition endpoints
    declared, at most one [Initial] pseudo-state per composite (and at
    top level), every [Initial] has exactly one outgoing completion
    transition, history only on composites, [Initial] states carry no
    entry/exit actions. *)

val pp : Format.formatter -> t -> unit
