(** Deployment diagrams: processors ([<<SAengine>>] nodes), a shared
    bus, and the allocation of threads to processors (paper Fig. 3a). *)

type node = { node_name : string; node_stereotypes : Stereotype.t list }

type t = {
  dep_name : string;
  dep_nodes : node list;
  dep_bus : string option;
  dep_allocation : (string * string) list;
      (** (thread instance name, node name) pairs *)
}

val node : string -> node

val make :
  ?bus:string -> name:string -> nodes:node list ->
  allocation:(string * string) list -> unit -> t

val node_of_thread : t -> string -> string option
(** Processor a thread is allocated to. *)

val threads_on : t -> string -> string list
(** Threads allocated to the given node, in allocation order. *)

val node_names : t -> string list
val pp : Format.formatter -> t -> unit
