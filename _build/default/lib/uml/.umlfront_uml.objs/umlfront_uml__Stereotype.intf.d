lib/uml/stereotype.mli: Format
