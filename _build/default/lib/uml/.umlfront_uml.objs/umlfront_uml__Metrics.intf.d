lib/uml/metrics.mli: Model
