lib/uml/plantuml.ml: Activity Buffer Classifier Deployment Filename List Model Operation Option Printf Sequence Statechart Stereotype String
