lib/uml/activity.mli: Format Sequence
