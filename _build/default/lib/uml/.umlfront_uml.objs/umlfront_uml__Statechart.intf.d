lib/uml/statechart.mli: Format
