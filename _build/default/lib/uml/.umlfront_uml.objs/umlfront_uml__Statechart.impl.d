lib/uml/statechart.ml: Format Hashtbl List String
