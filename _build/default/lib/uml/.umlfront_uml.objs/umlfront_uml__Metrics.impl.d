lib/uml/metrics.ml: Buffer Classifier Hashtbl List Model Option Printf Sequence
