lib/uml/sequence.ml: Datatype Format List String
