lib/uml/classifier.ml: Format List Operation Printf Stereotype String
