lib/uml/validate.ml: Activity Classifier Deployment Format Hashtbl List Model Operation Option Printf Sequence Statechart String
