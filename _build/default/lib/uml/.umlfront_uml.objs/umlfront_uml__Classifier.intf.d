lib/uml/classifier.mli: Format Operation Stereotype
