lib/uml/activity.ml: Format Hashtbl List Option Printf Sequence String
