lib/uml/datatype.mli: Format
