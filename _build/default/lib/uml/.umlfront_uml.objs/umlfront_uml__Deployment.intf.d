lib/uml/deployment.mli: Format Stereotype
