lib/uml/xmi.ml: Activity Classifier Datatype Deployment List Model Operation Option Printf Sequence Statechart Stereotype String Umlfront_xml
