lib/uml/operation.ml: Datatype Format List Option Printf
