lib/uml/stereotype.ml: Format
