lib/uml/xmi.mli: Model Umlfront_xml
