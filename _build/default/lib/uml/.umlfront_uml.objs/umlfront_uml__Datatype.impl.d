lib/uml/datatype.ml: Format Printf String
