lib/uml/validate.mli: Format Model
