lib/uml/builder.mli: Activity Classifier Model Operation Sequence Statechart
