lib/uml/plantuml.mli: Activity Deployment Model Sequence Statechart
