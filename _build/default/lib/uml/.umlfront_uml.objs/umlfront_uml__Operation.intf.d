lib/uml/operation.mli: Datatype Format
