lib/uml/model.mli: Activity Classifier Deployment Format Operation Sequence Statechart
