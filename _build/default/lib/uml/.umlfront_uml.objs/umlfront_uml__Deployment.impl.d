lib/uml/deployment.ml: Format List Stereotype String
