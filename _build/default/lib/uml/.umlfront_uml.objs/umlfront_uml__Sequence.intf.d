lib/uml/sequence.mli: Datatype Format
