lib/uml/model.ml: Activity Classifier Deployment Format List Option Sequence Statechart String
