lib/uml/builder.ml: Activity Classifier Deployment List Model Operation Printf Sequence Statechart String
