type t = {
  model_name : string;
  classes : Classifier.cls list;
  instances : Classifier.instance list;
  deployments : Deployment.t list;
  sequences : Sequence.t list;
  activities : Activity.t list;
  statecharts : Statechart.t list;
}

let make ?(classes = []) ?(instances = []) ?(deployments = []) ?(sequences = [])
    ?(activities = []) ?(statecharts = []) model_name =
  { model_name; classes; instances; deployments; sequences; activities; statecharts }

let find_class t name =
  List.find_opt (fun c -> String.equal c.Classifier.cls_name name) t.classes

let find_instance t name =
  List.find_opt (fun i -> String.equal i.Classifier.inst_name name) t.instances

let class_of_instance t name =
  match find_instance t name with
  | Some i -> find_class t i.Classifier.inst_class
  | None -> None

let kind_of_instance t name =
  Option.map (fun c -> c.Classifier.cls_kind) (class_of_instance t name)

let threads t =
  t.instances
  |> List.filter (fun i -> kind_of_instance t i.Classifier.inst_name = Some Classifier.Thread)
  |> List.map (fun i -> i.Classifier.inst_name)

let deployment t = match t.deployments with [] -> None | d :: _ -> Some d

let operation_of_message t (m : Sequence.message) =
  match class_of_instance t m.Sequence.msg_to with
  | Some c -> Classifier.find_operation c m.Sequence.msg_operation
  | None -> None

let behaviours t =
  match t.activities with
  | [] -> t.sequences
  | activities -> t.sequences @ [ Activity.to_sequence activities ]

let stats t =
  [
    ("classes", List.length t.classes);
    ("instances", List.length t.instances);
    ("threads", List.length (threads t));
    ("deployments", List.length t.deployments);
    ("sequence diagrams", List.length t.sequences);
    ("messages", List.fold_left (fun n sd -> n + List.length sd.Sequence.sd_messages) 0 t.sequences);
    ("activities", List.length t.activities);
    ("statecharts", List.length t.statecharts);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<v>UML model %s@," t.model_name;
  List.iter (fun c -> Format.fprintf ppf "%a@," Classifier.pp_cls c) t.classes;
  List.iter
    (fun (i : Classifier.instance) ->
      Format.fprintf ppf "object %s : %s@," i.Classifier.inst_name i.Classifier.inst_class)
    t.instances;
  List.iter (fun d -> Format.fprintf ppf "%a@," Deployment.pp d) t.deployments;
  List.iter (fun s -> Format.fprintf ppf "%a@," Sequence.pp s) t.sequences;
  List.iter (fun a -> Format.fprintf ppf "%a@," Activity.pp a) t.activities;
  List.iter (fun s -> Format.fprintf ppf "%a@," Statechart.pp s) t.statecharts;
  Format.fprintf ppf "@]"
