type t = {
  name : string;
  mutable classes : Classifier.cls list;  (* reverse order *)
  mutable instances : Classifier.instance list;
  mutable cpus : string list;
  mutable bus : string option;
  mutable allocation : (string * string) list;
  mutable diagrams : (string * Sequence.message list) list;  (* name, reverse msgs *)
  mutable current_sd : string;
  mutable statecharts : Statechart.t list;
  mutable activities : Activity.t list;
}

let create name =
  {
    name;
    classes = [];
    instances = [];
    cpus = [];
    bus = None;
    allocation = [];
    diagrams = [];
    current_sd = "main";
    statecharts = [];
    activities = [];
  }

let find_class b name =
  List.find_opt (fun c -> String.equal c.Classifier.cls_name name) b.classes

let add_class b c =
  match find_class b c.Classifier.cls_name with
  | Some _ -> invalid_arg (Printf.sprintf "builder: duplicate class %s" c.Classifier.cls_name)
  | None -> b.classes <- c :: b.classes

let add_instance b inst_name inst_class =
  if List.exists (fun i -> String.equal i.Classifier.inst_name inst_name) b.instances then
    invalid_arg (Printf.sprintf "builder: duplicate object %s" inst_name);
  b.instances <- { Classifier.inst_name; inst_class } :: b.instances

let thread b name =
  let cls_name = name ^ "_cls" in
  add_class b (Classifier.cls Classifier.Thread cls_name);
  add_instance b name cls_name

let passive_object b ?(operations = []) ~cls name =
  (match find_class b cls with
  | Some existing ->
      if existing.Classifier.cls_kind <> Classifier.Passive then
        invalid_arg (Printf.sprintf "builder: class %s is not passive" cls)
  | None -> add_class b (Classifier.cls ~operations Classifier.Passive cls));
  add_instance b name cls

let platform b name =
  let cls_name = name ^ "_cls" in
  add_class b (Classifier.cls Classifier.Platform cls_name);
  add_instance b name cls_name

let io_device b ?(operations = []) name =
  let cls_name = name ^ "_cls" in
  add_class b (Classifier.cls ~operations Classifier.Io_device cls_name);
  add_instance b name cls_name

let operation b ~cls op =
  match find_class b cls with
  | None -> invalid_arg (Printf.sprintf "builder: unknown class %s" cls)
  | Some c ->
      let updated =
        { c with Classifier.cls_operations = c.Classifier.cls_operations @ [ op ] }
      in
      b.classes <-
        List.map
          (fun k -> if String.equal k.Classifier.cls_name cls then updated else k)
          b.classes

let cpu b name = if not (List.mem name b.cpus) then b.cpus <- b.cpus @ [ name ]
let bus b name = b.bus <- Some name

let allocate b ~thread ~cpu:node =
  if not (List.mem node b.cpus) then
    invalid_arg (Printf.sprintf "builder: unknown cpu %s" node);
  b.allocation <- b.allocation @ [ (thread, node) ]

let sequence b name =
  if not (List.mem_assoc name b.diagrams) then b.diagrams <- (name, []) :: b.diagrams;
  b.current_sd <- name

let class_of_instance b inst =
  match List.find_opt (fun i -> String.equal i.Classifier.inst_name inst) b.instances with
  | Some i -> find_class b i.Classifier.inst_class
  | None -> None

let infer_operation op_name args result outs =
  let params =
    List.map
      (fun (a : Sequence.arg) ->
        Operation.param ~dir:Operation.In a.Sequence.arg_name a.Sequence.arg_type)
      args
    @ (match result with
      | Some (r : Sequence.arg) ->
          [ Operation.param ~dir:Operation.Return "result" r.Sequence.arg_type ]
      | None -> [])
    @ List.map
        (fun (o : Sequence.arg) ->
          Operation.param ~dir:Operation.Out o.Sequence.arg_name o.Sequence.arg_type)
        outs
  in
  Operation.make ~params op_name

let call b ?sd ?(args = []) ?result ?(outs = []) ~from ~target op_name =
  let sd_name = match sd with Some s -> sequence b s; s | None -> b.current_sd in
  if not (List.mem_assoc sd_name b.diagrams) then b.diagrams <- (sd_name, []) :: b.diagrams;
  (* Register the formal operation on the callee class when missing. *)
  (match class_of_instance b target with
  | Some c when Classifier.find_operation c op_name = None ->
      operation b ~cls:c.Classifier.cls_name (infer_operation op_name args result outs)
  | Some _ | None -> ());
  let msg = Sequence.message ~args ?result ~outs ~from ~target op_name in
  b.diagrams <-
    List.map
      (fun (n, msgs) -> if String.equal n sd_name then (n, msg :: msgs) else (n, msgs))
      b.diagrams

let statechart b sc = b.statecharts <- b.statecharts @ [ sc ]

let activity b act =
  List.iter
    (fun node ->
      match node with
      | Activity.Action a -> (
          match class_of_instance b a.Activity.act_target with
          | Some c when Classifier.find_operation c a.Activity.act_operation = None ->
              operation b ~cls:c.Classifier.cls_name
                (infer_operation a.Activity.act_operation a.Activity.act_args
                   a.Activity.act_result [])
          | Some _ | None -> ())
      | Activity.Initial _ | Activity.Final _ | Activity.Fork _ | Activity.Join _
      | Activity.Decision _ | Activity.Merge _ ->
          ())
    act.Activity.act_nodes;
  b.activities <- b.activities @ [ act ]

let finish b =
  let deployments =
    if b.cpus = [] then []
    else
      [
        Deployment.make ?bus:b.bus ~name:(b.name ^ "_deployment")
          ~nodes:(List.map Deployment.node b.cpus)
          ~allocation:b.allocation ();
      ]
  in
  let sequences =
    List.rev_map (fun (n, msgs) -> Sequence.make n (List.rev msgs)) b.diagrams
  in
  Model.make ~classes:(List.rev b.classes) ~instances:(List.rev b.instances)
    ~deployments ~sequences ~activities:b.activities ~statecharts:b.statecharts b.name
