type node = { node_name : string; node_stereotypes : Stereotype.t list }

type t = {
  dep_name : string;
  dep_nodes : node list;
  dep_bus : string option;
  dep_allocation : (string * string) list;
}

let node name = { node_name = name; node_stereotypes = [ Stereotype.Sa_engine ] }

let make ?bus ~name ~nodes ~allocation () =
  { dep_name = name; dep_nodes = nodes; dep_bus = bus; dep_allocation = allocation }

let node_of_thread t thread = List.assoc_opt thread t.dep_allocation

let threads_on t node =
  t.dep_allocation
  |> List.filter_map (fun (thread, n) ->
         if String.equal n node then Some thread else None)

let node_names t = List.map (fun n -> n.node_name) t.dep_nodes

let pp ppf t =
  Format.fprintf ppf "@[<v>deployment %s" t.dep_name;
  List.iter
    (fun n ->
      Format.fprintf ppf "@,  node %s: [%s]" n.node_name
        (String.concat ", " (threads_on t n.node_name)))
    t.dep_nodes;
  (match t.dep_bus with
  | Some b -> Format.fprintf ppf "@,  bus %s" b
  | None -> ());
  Format.fprintf ppf "@]"
