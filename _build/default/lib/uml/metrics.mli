(** Model complexity metrics for reports: the structural numbers a
    designer reads before deciding how to partition and allocate. *)

type t = {
  threads : int;
  functional_calls : int;  (** calls to passive/Platform objects *)
  comm_messages : int;  (** Set/Get between threads *)
  io_calls : int;
  comm_bytes : int;  (** total inter-thread payload per iteration *)
  fan_out : (string * int) list;  (** thread -> distinct receiving threads *)
  fan_in : (string * int) list;
  token_reuse : float;
      (** average consumers per produced token (>1 = real dataflow
          sharing, the "r1 feeds dec and mult" pattern of Fig. 3) *)
}

val measure : Model.t -> t
val report : Model.t -> string
