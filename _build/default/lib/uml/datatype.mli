(** Data types carried by UML operation parameters and message
    arguments.

    Sizes matter: the thread-allocation optimization weights task-graph
    edges by the {e volume of transferred data} (paper §4.2.3), which we
    compute from the byte size of the exchanged values. *)

type t =
  | D_void
  | D_bool
  | D_int
  | D_float
  | D_array of t * int  (** element type, length *)
  | D_named of string * int  (** user type: name, size in bytes *)

val size_bytes : t -> int
(** Byte size used as communication volume; [D_void] is 0. *)

val to_string : t -> string

val of_string : string -> t
(** Inverse of {!to_string}. @raise Invalid_argument on junk. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
