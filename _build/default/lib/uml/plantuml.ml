let buffer build =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "@startuml\n";
  build buf;
  out "@enduml\n";
  Buffer.contents buf

let out buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let sequence (sd : Sequence.t) =
  buffer (fun buf ->
      out buf "title %s\n" sd.sd_name;
      List.iter
        (fun name -> out buf "participant \"%s\"\n" name)
        (Sequence.lifelines sd);
      List.iter
        (fun (m : Sequence.message) ->
          let args =
            String.concat ", "
              (List.map (fun (a : Sequence.arg) -> a.arg_name) m.msg_args)
          in
          out buf "\"%s\" -> \"%s\" : %s(%s)\n" m.msg_from m.msg_to m.msg_operation args;
          match m.msg_result with
          | Some r ->
              out buf "\"%s\" --> \"%s\" : %s\n" m.msg_to m.msg_from r.Sequence.arg_name
          | None -> ())
        sd.sd_messages)

let deployment (d : Deployment.t) =
  buffer (fun buf ->
      out buf "title %s\n" d.dep_name;
      List.iter
        (fun (n : Deployment.node) ->
          out buf "node \"%s\" <<SAengine>> {\n" n.node_name;
          List.iter
            (fun th -> out buf "  artifact \"%s\" <<SASchedRes>>\n" th)
            (Deployment.threads_on d n.node_name);
          out buf "}\n")
        d.dep_nodes;
      match d.dep_bus with
      | Some b ->
          out buf "node \"%s\" <<bus>>\n" b;
          let rec pairs = function
            | (n : Deployment.node) :: rest ->
                out buf "\"%s\" -- \"%s\"\n" n.node_name b;
                pairs rest
            | [] -> ()
          in
          pairs d.dep_nodes
      | None -> ())

let escape_guard s = String.concat "\\n" (String.split_on_char '\n' s)

let statechart (sc : Statechart.t) =
  buffer (fun buf ->
      out buf "title %s\n" sc.sc_name;
      let rec emit indent (s : Statechart.state) =
        match s.st_kind with
        | Statechart.Initial -> ()
        | Statechart.Final -> out buf "%sstate \"%s\" <<end>>\n" indent s.st_name
        | Statechart.Simple | Statechart.Composite ->
            if s.st_children = [] then out buf "%sstate \"%s\"\n" indent s.st_name
            else begin
              out buf "%sstate \"%s\" {\n" indent s.st_name;
              (match s.st_history with
              | Statechart.Shallow -> out buf "%s  state \"[H]\" as %s_H\n" indent s.st_name
              | Statechart.Deep -> out buf "%s  state \"[H*]\" as %s_H\n" indent s.st_name
              | Statechart.No_history -> ());
              List.iter (emit (indent ^ "  ")) s.st_children;
              out buf "%s}\n" indent
            end;
            Option.iter (fun a -> out buf "%s\"%s\" : entry / %s\n" indent s.st_name a) s.st_entry;
            Option.iter (fun a -> out buf "%s\"%s\" : exit / %s\n" indent s.st_name a) s.st_exit
      in
      List.iter (emit "") sc.sc_states;
      List.iter
        (fun (tr : Statechart.transition) ->
          let src_is_initial =
            match Statechart.find_state sc tr.tr_source with
            | Some s -> s.st_kind = Statechart.Initial
            | None -> false
          in
          let label =
            String.concat ""
              [
                Option.value tr.tr_trigger ~default:"";
                (match tr.tr_guard with Some g -> " [" ^ escape_guard g ^ "]" | None -> "");
                (match tr.tr_effect with Some e -> " / " ^ e | None -> "");
              ]
          in
          if src_is_initial then out buf "[*] --> \"%s\"\n" tr.tr_target
          else if label = "" then out buf "\"%s\" --> \"%s\"\n" tr.tr_source tr.tr_target
          else out buf "\"%s\" --> \"%s\" : %s\n" tr.tr_source tr.tr_target label)
        sc.sc_transitions)

let activity (a : Activity.t) =
  buffer (fun buf ->
      out buf "title %s (thread %s)\n" a.act_diagram_name a.act_owner;
      List.iter
        (fun node ->
          match node with
          | Activity.Action act ->
              out buf "rectangle \"%s:\\n%s.%s\" as %s\n" act.Activity.act_name
                act.Activity.act_target act.Activity.act_operation act.Activity.act_name
          | Activity.Initial n -> out buf "circle \" \" as %s\n" n
          | Activity.Final n -> out buf "circle \"(X)\" as %s\n" n
          | Activity.Fork n | Activity.Join n -> out buf "rectangle \"=\" as %s\n" n
          | Activity.Decision n | Activity.Merge n -> out buf "diamond %s\n" n)
        a.act_nodes;
      List.iter
        (fun (e : Activity.edge) ->
          match e.edge_guard with
          | Some g -> out buf "%s --> %s : [%s]\n" e.edge_source e.edge_target (escape_guard g)
          | None -> out buf "%s --> %s\n" e.edge_source e.edge_target)
        a.act_edges)

let classes (m : Model.t) =
  buffer (fun buf ->
      out buf "title %s\n" m.model_name;
      List.iter
        (fun (c : Classifier.cls) ->
          out buf "class \"%s\" " c.cls_name;
          (match c.cls_stereotypes with
          | [] -> ()
          | sts ->
              out buf "<<%s>> "
                (String.concat ", " (List.map Stereotype.to_string sts)));
          out buf "{\n";
          List.iter
            (fun (op : Operation.t) ->
              out buf "  %s(%s)\n" op.op_name
                (String.concat ", "
                   (List.map
                      (fun (p : Operation.parameter) ->
                        Operation.direction_to_string p.param_dir ^ " " ^ p.param_name)
                      op.op_params)))
            c.cls_operations;
          out buf "}\n")
        m.classes;
      List.iter
        (fun (i : Classifier.instance) ->
          out buf "object \"%s\" as o_%s\n" i.inst_name i.inst_name;
          out buf "o_%s ..> \"%s\"\n" i.inst_name i.inst_class)
        m.instances)

let model (m : Model.t) =
  (("classes", classes m)
  :: List.map (fun (d : Deployment.t) -> (d.dep_name, deployment d)) m.deployments)
  @ List.map (fun (sd : Sequence.t) -> (sd.sd_name, sequence sd)) m.sequences
  @ List.map
      (fun (a : Activity.t) -> (a.act_diagram_name, activity a))
      m.activities
  @ List.map (fun (sc : Statechart.t) -> (sc.sc_name, statechart sc)) m.statecharts

let save m ~dir =
  List.iter
    (fun (base, text) ->
      let oc = open_out (Filename.concat dir (base ^ ".puml")) in
      output_string oc text;
      close_out oc)
    (model m)
