type issue = { where : string; what : string }

let pp_issue ppf i = Format.fprintf ppf "%s: %s" i.where i.what

let check model =
  let issues = ref [] in
  let blame where what = issues := { where; what } :: !issues in
  let check_message sd (m : Sequence.message) =
    let where = Printf.sprintf "%s: %s->%s.%s" sd m.msg_from m.msg_to m.msg_operation in
    let caller_kind = Model.kind_of_instance model m.msg_from in
    let callee_kind = Model.kind_of_instance model m.msg_to in
    if Model.find_instance model m.msg_from = None then
      blame where (Printf.sprintf "unknown caller object %s" m.msg_from);
    if Model.find_instance model m.msg_to = None then
      blame where (Printf.sprintf "unknown callee object %s" m.msg_to);
    (match (callee_kind, Model.operation_of_message model m) with
    | Some Classifier.Platform, _ -> ()
    | Some _, None ->
        blame where
          (Printf.sprintf "operation %s not declared on class of %s" m.msg_operation
             m.msg_to)
    | Some _, Some op ->
        let formal_inputs = List.length (Operation.inputs op) in
        let actual = List.length m.msg_args in
        if formal_inputs <> actual then
          blame where
            (Printf.sprintf "argument count mismatch: %d actual vs %d formal inputs"
               actual formal_inputs)
    | None, _ -> ());
    (match (caller_kind, callee_kind) with
    | Some Classifier.Thread, Some Classifier.Thread ->
        if not (Sequence.is_send m || Sequence.is_receive m) then
          blame where "thread-to-thread call must use the Set/Get prefix convention"
    | _, Some Classifier.Io_device ->
        if not (Sequence.is_io_read m || Sequence.is_io_write m) then
          blame where "call to an <<IO>> object must use the get/set prefix convention"
    | _, _ -> ())
  in
  List.iter
    (fun (sd : Sequence.t) -> List.iter (check_message sd.sd_name) sd.sd_messages)
    (Model.behaviours model);
  (* Deployment consistency *)
  (match Model.deployment model with
  | None -> ()
  | Some dep ->
      let nodes = Deployment.node_names dep in
      List.iter
        (fun thread ->
          match
            List.filter (fun (t, _) -> String.equal t thread) dep.Deployment.dep_allocation
          with
          | [] -> blame thread "thread not allocated to any processor"
          | [ (_, node) ] ->
              if not (List.mem node nodes) then
                blame thread (Printf.sprintf "allocated to undeclared node %s" node)
          | _ :: _ :: _ -> blame thread "thread allocated more than once")
        (Model.threads model);
      List.iter
        (fun (thread, _) ->
          if Model.kind_of_instance model thread <> Some Classifier.Thread then
            blame thread "allocation entry does not name a thread instance")
        dep.Deployment.dep_allocation);
  (* Token discipline, order-independent so feedback loops are allowed
     (they are broken later by UnitDelay insertion, §4.2.2), and
     model-global because the diagrams are partial views of one
     interaction (the mapping pools them): every consumed token must be
     produced somewhere, by a result binding or a Set delivery. *)
  let behaviours = Model.behaviours model in
  let all_messages =
    List.concat_map (fun (sd : Sequence.t) -> sd.sd_messages) behaviours
  in
  let produced = Hashtbl.create 8 in
  let produce (a : Sequence.arg) = Hashtbl.replace produced a.arg_name () in
  List.iter
    (fun (m : Sequence.message) ->
      Option.iter produce m.Sequence.msg_result;
      List.iter produce m.Sequence.msg_outs;
      if Sequence.is_send m then List.iter produce m.Sequence.msg_args)
    all_messages;
  List.iter
    (fun (m : Sequence.message) ->
      List.iter
        (fun (a : Sequence.arg) ->
          if not (Hashtbl.mem produced a.arg_name) then
            blame m.msg_from
              (Printf.sprintf "token %s consumed by %s is never produced" a.arg_name
                 m.msg_operation))
        m.Sequence.msg_args)
    all_messages;
  (* Per-thread availability: the mapping wires a thread's consumers
     only from ports available inside that thread — its own results
     (calls, Gets, IO reads) and Set deliveries addressed to it.  A
     token a thread consumes without any of those is a dangling input
     in the generated model. *)
  let check_thread_availability thread =
    let available = Hashtbl.create 8 in
    let provide (a : Sequence.arg) = Hashtbl.replace available a.arg_name () in
    List.iter
      (fun (m : Sequence.message) ->
        if String.equal m.msg_from thread then (
          Option.iter provide m.msg_result;
          List.iter provide m.msg_outs);
        if String.equal m.msg_to thread && Sequence.is_send m then
          List.iter provide m.msg_args)
      all_messages;
    List.iter
      (fun (m : Sequence.message) ->
        if String.equal m.msg_from thread then
          List.iter
            (fun (a : Sequence.arg) ->
              if not (Hashtbl.mem available a.arg_name) then
                blame thread
                  (Printf.sprintf
                     "token %s consumed by %s is not available in this thread (no local \
production, Get, IO read or Set delivery)"
                     a.arg_name m.msg_operation))
            m.msg_args)
      all_messages
  in
  List.iter check_thread_availability (Model.threads model);
  (* State machines must be well-formed. *)
  List.iter
    (fun (sc : Statechart.t) ->
      List.iter
        (fun (i : Statechart.issue) ->
          blame
            (sc.Statechart.sc_name ^ "/" ^ i.Statechart.where)
            i.Statechart.what)
        (Statechart.check sc))
    model.Model.statecharts;
  (* Activity diagrams must themselves be well-formed and owned by a
     declared thread. *)
  List.iter
    (fun (a : Activity.t) ->
      List.iter
        (fun (i : Activity.issue) -> blame i.Activity.where i.Activity.what)
        (Activity.check a);
      if Model.kind_of_instance model a.Activity.act_owner <> Some Classifier.Thread then
        blame a.Activity.act_diagram_name
          (Printf.sprintf "activity owner %s is not a thread" a.Activity.act_owner))
    model.Model.activities;
  List.rev !issues

let check_exn model =
  match check model with
  | [] -> ()
  | i :: _ ->
      invalid_arg (Printf.sprintf "UML model not well-formed: %s: %s" i.where i.what)
