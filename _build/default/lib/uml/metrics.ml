type t = {
  threads : int;
  functional_calls : int;
  comm_messages : int;
  io_calls : int;
  comm_bytes : int;
  fan_out : (string * int) list;
  fan_in : (string * int) list;
  token_reuse : float;
}

let measure (m : Model.t) =
  let threads = Model.threads m in
  let messages =
    List.concat_map (fun (sd : Sequence.t) -> sd.sd_messages) (Model.behaviours m)
  in
  let kind name = Model.kind_of_instance m name in
  let functional_calls = ref 0 in
  let comm_messages = ref 0 in
  let io_calls = ref 0 in
  let comm_bytes = ref 0 in
  let peers_out = Hashtbl.create 8 in
  let peers_in = Hashtbl.create 8 in
  let produced = Hashtbl.create 16 in
  let consumed = Hashtbl.create 16 in
  List.iter
    (fun (msg : Sequence.message) ->
      (match (kind msg.msg_from, kind msg.msg_to) with
      | Some Classifier.Thread, Some Classifier.Thread ->
          incr comm_messages;
          comm_bytes := !comm_bytes + Sequence.transferred_bytes msg;
          let sender, receiver =
            if Sequence.is_receive msg then (msg.msg_to, msg.msg_from)
            else (msg.msg_from, msg.msg_to)
          in
          let add table key peer =
            let existing = Option.value (Hashtbl.find_opt table key) ~default:[] in
            if not (List.mem peer existing) then Hashtbl.replace table key (peer :: existing)
          in
          add peers_out sender receiver;
          add peers_in receiver sender
      | Some Classifier.Thread, Some (Classifier.Passive | Classifier.Platform) ->
          incr functional_calls
      | Some Classifier.Thread, Some Classifier.Io_device -> incr io_calls
      | _, _ -> ());
      Option.iter
        (fun (r : Sequence.arg) -> Hashtbl.replace produced r.arg_name ())
        msg.msg_result;
      List.iter
        (fun (o : Sequence.arg) -> Hashtbl.replace produced o.arg_name ())
        msg.msg_outs;
      List.iter
        (fun (a : Sequence.arg) ->
          Hashtbl.replace consumed a.arg_name
            (1 + Option.value (Hashtbl.find_opt consumed a.arg_name) ~default:0))
        msg.msg_args)
    messages;
  let reuse_total, reuse_count =
    Hashtbl.fold
      (fun token () (total, count) ->
        (total + Option.value (Hashtbl.find_opt consumed token) ~default:0, count + 1))
      produced (0, 0)
  in
  let per_thread table =
    List.map
      (fun th ->
        (th, List.length (Option.value (Hashtbl.find_opt table th) ~default:[])))
      threads
  in
  {
    threads = List.length threads;
    functional_calls = !functional_calls;
    comm_messages = !comm_messages;
    io_calls = !io_calls;
    comm_bytes = !comm_bytes;
    fan_out = per_thread peers_out;
    fan_in = per_thread peers_in;
    token_reuse =
      (if reuse_count = 0 then 0.0 else float_of_int reuse_total /. float_of_int reuse_count);
  }

let report m =
  let x = measure m in
  let buf = Buffer.create 256 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "model metrics:\n";
  out "  threads            %d\n" x.threads;
  out "  functional calls   %d\n" x.functional_calls;
  out "  comm messages      %d (%d bytes/iteration)\n" x.comm_messages x.comm_bytes;
  out "  io calls           %d\n" x.io_calls;
  out "  token reuse        %.2f consumers/token\n" x.token_reuse;
  List.iter
    (fun (th, n_out) ->
      let n_in = Option.value (List.assoc_opt th x.fan_in) ~default:0 in
      out "  %-12s fan-out %d, fan-in %d\n" th n_out n_in)
    x.fan_out;
  Buffer.contents buf
