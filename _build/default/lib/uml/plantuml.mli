(** PlantUML export of the front-end diagrams, so the UML side of the
    flow is as renderable as the generated Simulink side (DOT):
    sequence, deployment, activity and state-machine diagrams, plus a
    class overview. *)

val sequence : Sequence.t -> string
val deployment : Deployment.t -> string
val statechart : Statechart.t -> string
val activity : Activity.t -> string
val classes : Model.t -> string

val model : Model.t -> (string * string) list
(** Every diagram of the model as (file base name, plantuml text):
    ["classes"], one per deployment/sequence/activity/statechart. *)

val save : Model.t -> dir:string -> unit
(** Writes [<base>.puml] files into [dir]. *)
