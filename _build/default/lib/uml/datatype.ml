type t =
  | D_void
  | D_bool
  | D_int
  | D_float
  | D_array of t * int
  | D_named of string * int

let rec size_bytes = function
  | D_void -> 0
  | D_bool -> 1
  | D_int -> 4
  | D_float -> 8
  | D_array (elt, n) -> n * size_bytes elt
  | D_named (_, size) -> size

let rec to_string = function
  | D_void -> "void"
  | D_bool -> "bool"
  | D_int -> "int"
  | D_float -> "float"
  | D_array (elt, n) -> Printf.sprintf "%s[%d]" (to_string elt) n
  | D_named (name, size) -> Printf.sprintf "%s:%d" name size

let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Datatype.of_string: %S" s) in
  let rec parse s =
    match s with
    | "void" -> D_void
    | "bool" -> D_bool
    | "int" -> D_int
    | "float" -> D_float
    | _ -> (
        if String.length s > 0 && s.[String.length s - 1] = ']' then
          match String.rindex_opt s '[' with
          | Some i ->
              let elt = parse (String.sub s 0 i) in
              let n = String.sub s (i + 1) (String.length s - i - 2) in
              (try D_array (elt, int_of_string n) with Failure _ -> fail ())
          | None -> fail ()
        else
          match String.rindex_opt s ':' with
          | Some i ->
              let name = String.sub s 0 i in
              let size = String.sub s (i + 1) (String.length s - i - 1) in
              (try D_named (name, int_of_string size) with Failure _ -> fail ())
          | None -> fail ())
  in
  parse s

let equal (a : t) (b : t) = a = b
let pp ppf t = Format.pp_print_string ppf (to_string t)
