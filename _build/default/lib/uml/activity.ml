type node =
  | Initial of string
  | Final of string
  | Action of action
  | Fork of string
  | Join of string
  | Decision of string
  | Merge of string

and action = {
  act_name : string;
  act_target : string;
  act_operation : string;
  act_args : Sequence.arg list;
  act_result : Sequence.arg option;
}

type edge = { edge_source : string; edge_target : string; edge_guard : string option }

type t = {
  act_diagram_name : string;
  act_owner : string;
  act_nodes : node list;
  act_edges : edge list;
}

let node_name = function
  | Initial n | Final n | Fork n | Join n | Decision n | Merge n -> n
  | Action a -> a.act_name

let action ?(args = []) ?result ~name ~target operation =
  Action
    {
      act_name = name;
      act_target = target;
      act_operation = operation;
      act_args = args;
      act_result = result;
    }

let edge ?guard ~source ~target () =
  { edge_source = source; edge_target = target; edge_guard = guard }

let make ~name ~owner act_nodes act_edges =
  { act_diagram_name = name; act_owner = owner; act_nodes; act_edges }

type issue = { where : string; what : string }

let successors t name =
  t.act_edges
  |> List.filter_map (fun e ->
         if String.equal e.edge_source name then Some e.edge_target else None)

let check t =
  let issues = ref [] in
  let blame where what = issues := { where; what } :: !issues in
  let names = List.map node_name t.act_nodes in
  let initials =
    List.filter (function Initial _ -> true | _ -> false) t.act_nodes
  in
  if List.length initials <> 1 then
    blame t.act_diagram_name
      (Printf.sprintf "expected exactly one initial node, found %d" (List.length initials));
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then blame n "duplicate node name";
      Hashtbl.replace seen n ())
    names;
  List.iter
    (fun e ->
      if not (List.mem e.edge_source names) then
        blame e.edge_source "edge source is not a declared node";
      if not (List.mem e.edge_target names) then
        blame e.edge_target "edge target is not a declared node")
    t.act_edges;
  (* Reachability of actions from the initial node. *)
  (match initials with
  | [ init ] ->
      let reached = Hashtbl.create 8 in
      let rec visit n =
        if not (Hashtbl.mem reached n) then (
          Hashtbl.replace reached n ();
          List.iter visit (successors t n))
      in
      visit (node_name init);
      List.iter
        (fun node ->
          match node with
          | Action a when not (Hashtbl.mem reached a.act_name) ->
              blame a.act_name "action unreachable from the initial node"
          | _ -> ())
        t.act_nodes
  | _ -> ());
  (* Control-flow acyclicity (DFS with grey marking). *)
  let color = Hashtbl.create 8 in
  let rec dfs n =
    match Hashtbl.find_opt color n with
    | Some `Grey -> blame n "control-flow cycle"
    | Some `Black -> ()
    | None ->
        Hashtbl.replace color n `Grey;
        List.iter dfs (successors t n);
        Hashtbl.replace color n `Black
  in
  List.iter (fun node -> dfs (node_name node)) t.act_nodes;
  List.rev !issues

let to_messages t =
  (match check t with
  | [] -> ()
  | i :: _ ->
      invalid_arg
        (Printf.sprintf "activity %s not well-formed: %s: %s" t.act_diagram_name i.where
           i.what));
  (* Kahn topological sort, preferring declaration order so the
     emitted call sequence is stable. *)
  let indegree = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace indegree (node_name n) 0) t.act_nodes;
  List.iter
    (fun e ->
      Hashtbl.replace indegree e.edge_target
        (1 + Option.value (Hashtbl.find_opt indegree e.edge_target) ~default:0))
    t.act_edges;
  let order = ref [] in
  let remaining = ref (List.map node_name t.act_nodes) in
  while !remaining <> [] do
    match
      List.find_opt (fun n -> Hashtbl.find indegree n = 0) !remaining
    with
    | None -> remaining := []  (* cycle: already reported by check *)
    | Some n ->
        order := n :: !order;
        remaining := List.filter (fun m -> not (String.equal m n)) !remaining;
        List.iter
          (fun e ->
            if String.equal e.edge_source n then
              Hashtbl.replace indegree e.edge_target (Hashtbl.find indegree e.edge_target - 1))
          t.act_edges
  done;
  List.rev !order
  |> List.filter_map (fun name ->
         t.act_nodes
         |> List.find_opt (fun n -> String.equal (node_name n) name)
         |> function
         | Some (Action a) ->
             Some
               (Sequence.message ~args:a.act_args ?result:a.act_result ~from:t.act_owner
                  ~target:a.act_target a.act_operation)
         | Some (Initial _ | Final _ | Fork _ | Join _ | Decision _ | Merge _) | None ->
             None)

let to_sequence activities =
  let name =
    match activities with
    | [] -> "activities"
    | first :: _ -> first.act_diagram_name ^ "_merged"
  in
  Sequence.make name (List.concat_map to_messages activities)

let pp ppf t =
  Format.fprintf ppf "@[<v>activity %s (thread %s)" t.act_diagram_name t.act_owner;
  List.iter
    (fun n ->
      match n with
      | Action a ->
          Format.fprintf ppf "@,  action %s: %s.%s" a.act_name a.act_target a.act_operation
      | other -> Format.fprintf ppf "@,  node %s" (node_name other))
    t.act_nodes;
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  %s -> %s%s" e.edge_source e.edge_target
        (match e.edge_guard with Some g -> " [" ^ g ^ "]" | None -> ""))
    t.act_edges;
  Format.fprintf ppf "@]"
