(** Operations (methods) of UML classifiers.

    Parameter directions drive the port mapping: [In] parameters become
    block input ports, [Out]/[Return] become output ports (paper §4.1). *)

type direction = In | Out | Inout | Return

type parameter = {
  param_name : string;
  param_dir : direction;
  param_type : Datatype.t;
}

type t = { op_name : string; op_params : parameter list }

val make : ?params:parameter list -> string -> t
val param : ?dir:direction -> string -> Datatype.t -> parameter

val inputs : t -> parameter list
(** [In] and [Inout] parameters, in declaration order. *)

val outputs : t -> parameter list
(** [Out], [Inout] and [Return] parameters, in declaration order. *)

val return_type : t -> Datatype.t option
(** Type of the [Return] parameter, if declared. *)

val direction_to_string : direction -> string
val direction_of_string : string -> direction
val pp : Format.formatter -> t -> unit
