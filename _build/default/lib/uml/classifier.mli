(** Classes and object instances of the UML model.

    The mapping distinguishes four object kinds (paper §4.1):
    - {e threads}: active objects stereotyped [<<SASchedRes>>];
    - {e passive} objects whose methods become S-Function blocks;
    - the special {e Platform} object standing for the Simulink block
      library (calls to it instantiate predefined blocks);
    - {e IO} objects stereotyped [<<IO>>] whose get*/set* methods become
      system-level ports. *)

type kind = Thread | Passive | Platform | Io_device

type cls = {
  cls_name : string;
  cls_kind : kind;
  cls_stereotypes : Stereotype.t list;
  cls_operations : Operation.t list;
}

type instance = { inst_name : string; inst_class : string }

val cls :
  ?stereotypes:Stereotype.t list ->
  ?operations:Operation.t list ->
  kind ->
  string ->
  cls
(** Builds a class; kind-implied stereotypes ([<<SASchedRes>>] for
    threads, [<<IO>>] for IO devices) are added automatically. *)

val instance : string -> cls -> instance
val find_operation : cls -> string -> Operation.t option
val kind_to_string : kind -> string
val kind_of_string : string -> kind
val pp_cls : Format.formatter -> cls -> unit
