(** Graphviz export of flat FSMs, for documentation and debugging. *)

val to_string : Fsm.t -> string
val save : Fsm.t -> string -> unit
