(** Synchronous parallel composition of flat FSMs.

    Heterogeneous controllers are often specified as cooperating state
    machines; the product machine lets the FSM branch of the flow emit
    a single implementation.  Semantics follow {!Fsm.run}: on an event,
    every component that handles it moves (emitting its actions, left
    component first) and the others stay; an event no component handles
    is dropped.  A product state is final when every component is in a
    final state (or has none). *)

val product : ?name:string -> Fsm.t -> Fsm.t -> Fsm.t
(** Reachable product construction; states are named ["s1|s2"].
    @raise Invalid_argument when either machine is non-deterministic or
    uses guards (compose before adding guard labels). *)

val product_list : ?name:string -> Fsm.t list -> Fsm.t
(** Left fold of {!product}. @raise Invalid_argument on []. *)
