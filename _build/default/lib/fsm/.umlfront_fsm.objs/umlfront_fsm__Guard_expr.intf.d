lib/fsm/guard_expr.mli:
