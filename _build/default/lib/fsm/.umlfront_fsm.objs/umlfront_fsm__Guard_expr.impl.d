lib/fsm/guard_expr.ml: Hashtbl List Option Printf String
