lib/fsm/flatten.ml: Fsm Hashtbl List Option Printf String Umlfront_uml
