lib/fsm/flatten.mli: Fsm Umlfront_uml
