lib/fsm/minimize.mli: Fsm
