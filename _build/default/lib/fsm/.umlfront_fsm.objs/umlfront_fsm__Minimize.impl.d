lib/fsm/minimize.ml: Fsm Hashtbl List
