lib/fsm/fsm.ml: Format Hashtbl List Option Printf String
