lib/fsm/dot.ml: Buffer Fsm List Printf String
