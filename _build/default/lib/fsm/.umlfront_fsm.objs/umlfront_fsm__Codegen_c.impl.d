lib/fsm/codegen_c.ml: Buffer Filename Fsm Guard_expr Hashtbl List Printf String
