lib/fsm/compose.mli: Fsm
