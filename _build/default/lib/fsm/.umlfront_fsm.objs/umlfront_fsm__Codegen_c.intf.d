lib/fsm/codegen_c.mli: Fsm
