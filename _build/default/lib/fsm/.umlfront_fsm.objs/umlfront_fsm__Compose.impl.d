lib/fsm/compose.ml: Fsm Hashtbl List Printf String
