lib/fsm/dot.mli: Fsm
