let sanitize s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c
      else '_')
    s

let state_const fsm s = Printf.sprintf "%s_ST_%s" (String.uppercase_ascii (sanitize fsm.Fsm.fsm_name)) (String.uppercase_ascii (sanitize s))
let event_const fsm e = Printf.sprintf "%s_EV_%s" (String.uppercase_ascii (sanitize fsm.Fsm.fsm_name)) (String.uppercase_ascii (sanitize e))

let guards fsm =
  fsm.Fsm.transitions
  |> List.filter_map (fun (tr : Fsm.transition) -> tr.t_guard)
  |> List.sort_uniq compare

(* With inline guards: partition into compilable expressions and
   callback-style opaque guards. *)
let split_guards ~inline_guards fsm =
  List.partition_map
    (fun g ->
      if inline_guards then
        match Guard_expr.parse g with Ok e -> Left (g, e) | Error _ -> Right g
      else Right g)
    (guards fsm)

let actions fsm =
  fsm.Fsm.transitions
  |> List.concat_map (fun (tr : Fsm.transition) -> tr.t_actions)
  |> List.sort_uniq compare

let header ?(inline_guards = false) fsm =
  let name = sanitize fsm.Fsm.fsm_name in
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "#ifndef %s_H\n#define %s_H\n\n" (String.uppercase_ascii name) (String.uppercase_ascii name);
  out "#include <stdbool.h>\n\n";
  out "typedef enum {\n";
  List.iter (fun s -> out "  %s,\n" (state_const fsm s)) fsm.Fsm.states;
  out "} %s_state_t;\n\n" name;
  out "typedef enum {\n";
  List.iter (fun e -> out "  %s,\n" (event_const fsm e)) (Fsm.events fsm);
  out "} %s_event_t;\n\n" name;
  let compiled, opaque = split_guards ~inline_guards fsm in
  let guard_vars =
    compiled |> List.concat_map (fun (_, e) -> Guard_expr.variables e)
    |> List.sort_uniq compare
  in
  List.iter (fun v -> out "extern double %s; /* guard variable */\n" v) guard_vars;
  List.iter (fun g -> out "bool %s_guard_%s(void);\n" name (sanitize g)) opaque;
  List.iter (fun a -> out "void %s_action_%s(void);\n" name (sanitize a)) (actions fsm);
  out "\n%s_state_t %s_initial(void);\n" name name;
  out "%s_state_t %s_step(%s_state_t state, %s_event_t event);\n" name name name name;
  out "bool %s_is_final(%s_state_t state);\n" name name;
  out "\n#endif /* %s_H */\n" (String.uppercase_ascii name);
  Buffer.contents buf

let source ?(inline_guards = false) fsm =
  let compiled, _ = split_guards ~inline_guards fsm in
  let name = sanitize fsm.Fsm.fsm_name in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "#include \"%s.h\"\n\n" name;
  out "%s_state_t %s_initial(void) { return %s; }\n\n" name name
    (state_const fsm fsm.Fsm.initial);
  out "bool %s_is_final(%s_state_t state) {\n" name name;
  (match fsm.Fsm.finals with
  | [] -> out "  (void)state;\n  return false;\n"
  | finals ->
      out "  switch (state) {\n";
      List.iter (fun s -> out "  case %s:\n" (state_const fsm s)) finals;
      out "    return true;\n  default:\n    return false;\n  }\n");
  out "}\n\n";
  out "%s_state_t %s_step(%s_state_t state, %s_event_t event) {\n" name name name name;
  out "  switch (state) {\n";
  List.iter
    (fun s ->
      out "  case %s:\n" (state_const fsm s);
      out "    switch (event) {\n";
      let by_event = Hashtbl.create 8 in
      let event_order = ref [] in
      List.iter
        (fun (tr : Fsm.transition) ->
          (match Hashtbl.find_opt by_event tr.t_event with
          | Some trs -> Hashtbl.replace by_event tr.t_event (tr :: trs)
          | None ->
              Hashtbl.replace by_event tr.t_event [ tr ];
              event_order := tr.t_event :: !event_order))
        (Fsm.transitions_from fsm s);
      List.iter
        (fun e ->
          out "    case %s:\n" (event_const fsm e);
          let trs = List.rev (Hashtbl.find by_event e) in
          List.iter
            (fun (tr : Fsm.transition) ->
              let fire indent =
                List.iter
                  (fun a -> out "%s%s_action_%s();\n" indent name (sanitize a))
                  tr.Fsm.t_actions;
                out "%sreturn %s;\n" indent (state_const fsm tr.Fsm.t_dst)
              in
              match tr.Fsm.t_guard with
              | Some g -> (
                  match List.assoc_opt g compiled with
                  | Some e ->
                      out "      if (%s) {\n" (Guard_expr.to_c e);
                      fire "        ";
                      out "      }\n"
                  | None ->
                      out "      if (%s_guard_%s()) {\n" name (sanitize g);
                      fire "        ";
                      out "      }\n")
              | None -> fire "      ")
            trs;
          out "      break;\n")
        (List.rev !event_order);
      out "    default:\n      break;\n    }\n";
      out "    break;\n")
    fsm.Fsm.states;
  out "  default:\n    break;\n  }\n";
  out "  return state; /* event dropped */\n}\n";
  Buffer.contents buf

let save ?inline_guards fsm ~dir =
  let name = sanitize fsm.Fsm.fsm_name in
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc
  in
  write (Filename.concat dir (name ^ ".h")) (header ?inline_guards fsm);
  write (Filename.concat dir (name ^ ".c")) (source ?inline_guards fsm)
