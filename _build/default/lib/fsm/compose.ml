let check_composable (m : Fsm.t) =
  if not (Fsm.is_deterministic m) then
    invalid_arg (Printf.sprintf "compose: %s is non-deterministic" m.Fsm.fsm_name);
  if List.exists (fun (tr : Fsm.transition) -> tr.Fsm.t_guard <> None) m.Fsm.transitions
  then invalid_arg (Printf.sprintf "compose: %s uses guards" m.Fsm.fsm_name)

let product ?name (a : Fsm.t) (b : Fsm.t) =
  check_composable a;
  check_composable b;
  let name =
    match name with Some n -> n | None -> a.Fsm.fsm_name ^ "*" ^ b.Fsm.fsm_name
  in
  let events =
    List.sort_uniq compare (Fsm.events a @ Fsm.events b)
  in
  let pair_name (s1, s2) = s1 ^ "|" ^ s2 in
  let step m state event =
    List.find_opt
      (fun (tr : Fsm.transition) ->
        String.equal tr.Fsm.t_src state && String.equal tr.Fsm.t_event event)
      m.Fsm.transitions
  in
  let seen = Hashtbl.create 32 in
  let transitions = ref [] in
  let rec explore (s1, s2) =
    if not (Hashtbl.mem seen (s1, s2)) then (
      Hashtbl.replace seen (s1, s2) ();
      List.iter
        (fun event ->
          let t1 = step a s1 event and t2 = step b s2 event in
          match (t1, t2) with
          | None, None -> ()
          | _, _ ->
              let d1 =
                match t1 with Some tr -> tr.Fsm.t_dst | None -> s1
              in
              let d2 =
                match t2 with Some tr -> tr.Fsm.t_dst | None -> s2
              in
              let actions =
                (match t1 with Some tr -> tr.Fsm.t_actions | None -> [])
                @ (match t2 with Some tr -> tr.Fsm.t_actions | None -> [])
              in
              transitions :=
                {
                  Fsm.t_src = pair_name (s1, s2);
                  t_event = event;
                  t_guard = None;
                  t_actions = actions;
                  t_dst = pair_name (d1, d2);
                }
                :: !transitions;
              explore (d1, d2))
        events)
  in
  let initial = (a.Fsm.initial, b.Fsm.initial) in
  explore initial;
  let states =
    Hashtbl.fold (fun pair () acc -> pair :: acc) seen [] |> List.sort compare
  in
  let final_in (m : Fsm.t) s = m.Fsm.finals = [] || List.mem s m.Fsm.finals in
  let finals =
    if a.Fsm.finals = [] && b.Fsm.finals = [] then []
    else
      states
      |> List.filter (fun (s1, s2) -> final_in a s1 && final_in b s2)
      |> List.map pair_name
  in
  Fsm.make ~finals ~name ~initial:(pair_name initial)
    ~states:(List.map pair_name states)
    (List.rev !transitions)

let product_list ?name = function
  | [] -> invalid_arg "compose: empty machine list"
  | first :: rest ->
      let composed = List.fold_left (fun acc m -> product acc m) first rest in
      (match name with
      | Some n -> { composed with Fsm.fsm_name = n }
      | None -> composed)
