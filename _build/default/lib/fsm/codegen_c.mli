(** Switch-based C code generation from a flat FSM (the role BridgePoint
    plays in the paper's control-flow branch). *)

val header : ?inline_guards:bool -> Fsm.t -> string
(** A C header declaring the state/event enums, the step function and
    the action callbacks.  With [inline_guards] (default false), guards
    that parse in the {!Guard_expr} language are compiled to C
    expressions over [extern double] variables (declared here) instead
    of callback functions; unparsable guards keep their callback. *)

val source : ?inline_guards:bool -> Fsm.t -> string
(** The C implementation: a [switch] over states with nested event
    dispatch; guards become calls to [bool <fsm>_guard_<name>(void)]
    (or inline expressions), actions calls to
    [void <fsm>_action_<name>(void)]. *)

val save : ?inline_guards:bool -> Fsm.t -> dir:string -> unit
(** Writes [<name>.h] and [<name>.c] into [dir]. *)
