(** A small expression language for transition guards, so guards are
    executable rather than opaque labels: the simulator can evaluate
    them against a variable environment and the C generator can inline
    them.

    Grammar (C-like precedence):
    {v
      expr  := or
      or    := and ('||' and)*
      and   := not ('&&' not)*
      not   := '!' not | cmp
      cmp   := arith (('=='|'!='|'<'|'<='|'>'|'>=') arith)?
      arith := term (('+'|'-') term)*
      term  := factor (('*'|'/') factor)*
      factor := number | identifier | '(' expr ')'
    v}

    A bare arithmetic expression is truthy when non-zero. *)

type t =
  | Num of float
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * t * t
  | Arith of arith * t * t

and cmp = Eq | Ne | Lt | Le | Gt | Ge
and arith = Add | Sub | Mul | Div

val parse : string -> (t, string) result
val parse_exn : string -> t

val eval : env:(string -> float) -> t -> bool
(** Unknown variables should be handled by [env] (e.g. default 0). *)

val eval_float : env:(string -> float) -> t -> float

val variables : t -> string list
(** Distinct variables, sorted. *)

val to_c : t -> string
(** A parenthesized C expression over [double] variables. *)

val to_string : t -> string
(** Re-printable form; [parse (to_string e)] yields an equivalent
    expression (property-tested). *)

val evaluator : (string * float) list -> string -> bool
(** [evaluator bindings] is a [guard_eval] function for {!Fsm.step}:
    parses each guard text (unparsable guards are conservatively true,
    like the default) and evaluates it; unbound variables read 0. *)
