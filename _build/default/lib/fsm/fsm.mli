(** Flat finite-state machines: the target of the control-flow branch
    of the design flow (UML state diagram → FSM → code generator).

    Transitions fire on named events, may carry an opaque guard label
    (evaluated by a caller-supplied predicate) and emit a list of
    action labels. *)

type transition = {
  t_src : string;
  t_event : string;
  t_guard : string option;
  t_actions : string list;
  t_dst : string;
}

type t = {
  fsm_name : string;
  states : string list;
  initial : string;
  finals : string list;
  transitions : transition list;
}

val make :
  ?finals:string list ->
  name:string ->
  initial:string ->
  states:string list ->
  transition list ->
  t
(** @raise Invalid_argument when the initial state, a final state or a
    transition endpoint is not declared. *)

val events : t -> string list
(** Distinct event names, sorted. *)

val transitions_from : t -> string -> transition list

val is_deterministic : t -> bool
(** No two unguarded transitions leave the same state on the same
    event. *)

val reachable_states : t -> string list
(** States reachable from the initial state (including it). *)

val prune_unreachable : t -> t

(** {1 Execution} *)

type step = { before : string; event : string; after : string; actions : string list }

val step :
  ?guard_eval:(string -> bool) -> t -> state:string -> event:string -> step option
(** First matching transition wins; [None] when no transition handles
    the event (event dropped, state unchanged by convention of the
    caller).  Default [guard_eval] accepts every guard. *)

val run : ?guard_eval:(string -> bool) -> t -> string list -> step list
(** Feed an event trace from the initial state; unhandled events are
    skipped. *)

val final_state : ?guard_eval:(string -> bool) -> t -> string list -> string

(** {1 Equivalence} *)

val simulate_equal : t -> t -> string list list -> bool
(** The two machines produce identical action traces on every given
    event trace (guards all taken). *)

val pp : Format.formatter -> t -> unit
