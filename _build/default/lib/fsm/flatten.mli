(** Statechart flattening: turns a hierarchical UML state machine into
    a flat {!Fsm.t} (the model-to-model mapping of the control-flow
    branch in Fig. 1/2 of the paper).

    Semantics implemented:
    - leaf states of the hierarchy become FSM states;
    - a transition targeting a composite state is redirected to the
      composite's default entry (the target of the completion
      transition leaving its [Initial] child, or its first leaf);
    - a transition leaving a composite state is replicated from every
      leaf inside it;
    - firing a flattened transition emits, in order: the exit actions
      of the states being left (innermost first), the transition
      effect, then the entry actions of the states being entered
      (outermost first);
    - composites marked with {e shallow history}
      ([Statechart.state ~history:true]) resume their last active
      direct child on re-entry: the flattening becomes a product of
      leaves and history memories, explored from the initial
      configuration (states are named ["leaf\@composite=child"]). *)

val run : Umlfront_uml.Statechart.t -> Fsm.t
(** @raise Invalid_argument when the chart has no resolvable initial
    leaf state or names an undeclared state in a transition. *)
