let signature fsm classes state =
  (* For each (event, guard): (actions, class index of destination). *)
  Fsm.transitions_from fsm state
  |> List.map (fun (tr : Fsm.transition) ->
         let cls =
           let rec find i = function
             | [] -> -1
             | c :: rest -> if List.mem tr.t_dst c then i else find (i + 1) rest
           in
           find 0 classes
         in
         ((tr.t_event, tr.t_guard), (tr.t_actions, cls)))
  |> List.sort compare

let refine fsm classes =
  List.concat_map
    (fun cls ->
      let keyed = List.map (fun s -> (signature fsm classes s, s)) cls in
      let grouped = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun (key, s) ->
          (match Hashtbl.find_opt grouped key with
          | Some states -> Hashtbl.replace grouped key (s :: states)
          | None ->
              Hashtbl.replace grouped key [ s ];
              order := key :: !order))
        keyed;
      List.rev_map (fun key -> List.rev (Hashtbl.find grouped key)) !order)
    classes

let equivalent_classes fsm =
  let fsm = Fsm.prune_unreachable fsm in
  let finals, non_finals =
    List.partition (fun s -> List.mem s fsm.Fsm.finals) fsm.Fsm.states
  in
  let initial_partition = List.filter (fun c -> c <> []) [ non_finals; finals ] in
  let rec fixpoint classes =
    let refined = refine fsm classes in
    if List.length refined = List.length classes then classes else fixpoint refined
  in
  fixpoint initial_partition |> List.map (List.sort compare)

let run fsm =
  let fsm = Fsm.prune_unreachable fsm in
  let classes = equivalent_classes fsm in
  let representative state =
    match List.find_opt (List.mem state) classes with
    | Some (rep :: _) -> rep
    | Some [] | None -> state
  in
  let states = List.sort_uniq compare (List.map representative fsm.Fsm.states) in
  let transitions =
    fsm.Fsm.transitions
    |> List.map (fun (tr : Fsm.transition) ->
           { tr with Fsm.t_src = representative tr.t_src; t_dst = representative tr.t_dst })
    |> List.sort_uniq compare
  in
  let finals =
    List.sort_uniq compare (List.map representative fsm.Fsm.finals)
  in
  Fsm.make ~finals ~name:fsm.Fsm.fsm_name
    ~initial:(representative fsm.Fsm.initial)
    ~states transitions
