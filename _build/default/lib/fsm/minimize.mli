(** FSM state minimization by partition refinement (Moore's algorithm
    adapted to transition-emitted actions): two states are equivalent
    when, for every event, they emit the same actions and move to
    equivalent states, and they agree on finality.

    Guarded transitions are treated as distinct alphabet symbols
    (event, guard), which is sound but may miss merges a guard-aware
    analysis would find. *)

val run : Fsm.t -> Fsm.t
(** Unreachable states are pruned first.  Merged states are renamed to
    the lexicographically-least member of their class, so the result is
    deterministic. *)

val equivalent_classes : Fsm.t -> string list list
(** The partition of (reachable) states the minimization finds. *)
