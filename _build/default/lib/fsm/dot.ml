let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let to_string fsm =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph \"%s\" {\n  rankdir=LR;\n  node [shape=ellipse];\n" (escape fsm.Fsm.fsm_name);
  out "  __start [shape=point];\n";
  List.iter
    (fun s ->
      let shape = if List.mem s fsm.Fsm.finals then "doublecircle" else "ellipse" in
      out "  \"%s\" [shape=%s];\n" (escape s) shape)
    fsm.Fsm.states;
  out "  __start -> \"%s\";\n" (escape fsm.Fsm.initial);
  List.iter
    (fun (tr : Fsm.transition) ->
      let label =
        tr.t_event
        ^ (match tr.t_guard with Some g -> Printf.sprintf " [%s]" g | None -> "")
        ^
        match tr.t_actions with
        | [] -> ""
        | acts -> " / " ^ String.concat "; " acts
      in
      out "  \"%s\" -> \"%s\" [label=\"%s\"];\n" (escape tr.t_src) (escape tr.t_dst)
        (escape label))
    fsm.Fsm.transitions;
  out "}\n";
  Buffer.contents buf

let save fsm path =
  let oc = open_out path in
  output_string oc (to_string fsm);
  close_out oc
