module Sc = Umlfront_uml.Statechart

type info = {
  parent : (string, string) Hashtbl.t;
  by_name : (string, Sc.state) Hashtbl.t;
}

let index chart =
  let info = { parent = Hashtbl.create 16; by_name = Hashtbl.create 16 } in
  let rec walk parent (s : Sc.state) =
    if Hashtbl.mem info.by_name s.st_name then
      invalid_arg (Printf.sprintf "flatten: duplicate state name %s" s.st_name);
    Hashtbl.replace info.by_name s.st_name s;
    (match parent with
    | Some p -> Hashtbl.replace info.parent s.st_name p
    | None -> ());
    List.iter (walk (Some s.st_name)) s.st_children
  in
  List.iter (walk None) chart.Sc.sc_states;
  info

let state_exn info name =
  match Hashtbl.find_opt info.by_name name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "flatten: unknown state %s" name)

let is_leaf (s : Sc.state) =
  s.st_children = [] && (s.st_kind = Sc.Simple || s.st_kind = Sc.Final)

let rec leaves_under info name =
  let s = state_exn info name in
  if is_leaf s then [ name ]
  else
    s.st_children
    |> List.filter (fun (c : Sc.state) -> c.st_kind <> Sc.Initial)
    |> List.concat_map (fun (c : Sc.state) -> leaves_under info c.st_name)

(* Default entry of a state: itself when a leaf, otherwise follow the
   completion transition of its Initial child (or fall back to the first
   leaf).  Returns the leaf name. *)
let rec default_entry chart info name =
  let s = state_exn info name in
  if is_leaf s then name
  else
    let initial_child =
      List.find_opt (fun (c : Sc.state) -> c.st_kind = Sc.Initial) s.st_children
    in
    let target =
      match initial_child with
      | Some init -> (
          chart.Sc.sc_transitions
          |> List.find_opt (fun (tr : Sc.transition) ->
                 String.equal tr.tr_source init.st_name && tr.tr_trigger = None)
          |> function
          | Some tr -> Some tr.tr_target
          | None -> None)
      | None -> None
    in
    match target with
    | Some t -> default_entry chart info t
    | None -> (
        match leaves_under info name with
        | leaf :: _ -> leaf
        | [] -> invalid_arg (Printf.sprintf "flatten: composite %s has no leaf" name))

let ancestors info name =
  (* Root-first: outermost ancestor down to the state itself. *)
  let rec up acc n =
    match Hashtbl.find_opt info.parent n with
    | Some p -> up (p :: acc) p
    | None -> acc
  in
  up [ name ] name

let chain_actions info pick names =
  List.filter_map (fun n -> pick (state_exn info n)) names

(* Exit/effect/entry action list of a flattened transition from
   [src_leaf] to [dst_leaf]. *)
let transition_actions info (tr : Sc.transition) src_leaf dst_leaf =
  let exited_down, entered_down =
    if String.equal src_leaf dst_leaf then ([ src_leaf ], [ dst_leaf ])
    else
      let rec strip = function
        | a :: arest, b :: brest when String.equal a b -> strip (arest, brest)
        | pair -> pair
      in
      strip (ancestors info src_leaf, ancestors info dst_leaf)
  in
  let exits = chain_actions info (fun s -> s.Sc.st_exit) (List.rev exited_down) in
  let entries = chain_actions info (fun s -> s.Sc.st_entry) entered_down in
  exits @ Option.to_list tr.tr_effect @ entries

(* ------------------------------------------------------------------ *)
(* Shallow history: product flattening with a memory slot per history
   composite.  A flat state is (leaf, memory); re-entering a history
   composite resumes the remembered direct child. *)

let direct_child_of info h leaf =
  (* The element right after [h] on the root-first ancestor chain. *)
  let rec scan = function
    | a :: (b :: _ as rest) -> if String.equal a h then Some b else scan rest
    | [ _ ] | [] -> None
  in
  scan (ancestors info leaf)

let under info h leaf =
  List.mem h (ancestors info leaf) && not (String.equal h leaf)

let resolve_with_memory chart info memory name =
  let rec resolve name =
    let s = state_exn info name in
    if is_leaf s then name
    else
      match (s.Sc.st_history, List.assoc_opt s.Sc.st_name memory) with
      | Sc.Deep, Some leaf -> leaf  (* the exact remembered configuration *)
      | Sc.Shallow, Some child -> resolve child
      | (Sc.Deep | Sc.Shallow | Sc.No_history), _ -> resolve_default s
  and resolve_default (s : Sc.state) =
    let initial_child =
      List.find_opt (fun (c : Sc.state) -> c.st_kind = Sc.Initial) s.st_children
    in
    let target =
      Option.bind initial_child (fun init ->
          chart.Sc.sc_transitions
          |> List.find_opt (fun (tr : Sc.transition) ->
                 String.equal tr.tr_source init.Sc.st_name && tr.tr_trigger = None)
          |> Option.map (fun (tr : Sc.transition) -> tr.tr_target))
    in
    match target with
    | Some t -> resolve t
    | None -> (
        match leaves_under info s.st_name with
        | leaf :: _ -> leaf
        | [] -> invalid_arg (Printf.sprintf "flatten: composite %s has no leaf" s.st_name))
  in
  resolve name

let run_with_history chart info history_composites initial_leaf =
  let config_name (leaf, memory) =
    leaf
    ^ String.concat ""
        (List.map
           (fun h ->
             Printf.sprintf "@%s=%s" h
               (Option.value (List.assoc_opt h memory) ~default:"_"))
           history_composites)
  in
  let update_memory memory src_leaf dst_leaf =
    List.filter_map
      (fun h ->
        let remember leaf =
          match (state_exn info h).Sc.st_history with
          | Sc.Deep -> Some leaf
          | Sc.Shallow -> direct_child_of info h leaf
          | Sc.No_history -> None
        in
        let next =
          if under info h dst_leaf then remember dst_leaf
          else if under info h src_leaf then remember src_leaf
          else List.assoc_opt h memory
        in
        Option.map (fun c -> (h, c)) next)
      history_composites
  in
  let chart_transitions =
    List.filter
      (fun (tr : Sc.transition) ->
        (state_exn info tr.Sc.tr_source).Sc.st_kind <> Sc.Initial)
      chart.Sc.sc_transitions
  in
  let seen = Hashtbl.create 32 in
  let flat_transitions = ref [] in
  let rec explore ((leaf, memory) as config) =
    if not (Hashtbl.mem seen (config_name config)) then (
      Hashtbl.replace seen (config_name config) (leaf, memory);
      List.iter
        (fun (tr : Sc.transition) ->
          if List.mem leaf (leaves_under info tr.Sc.tr_source) then (
            let dst_leaf = resolve_with_memory chart info memory tr.Sc.tr_target in
            let memory' = update_memory memory leaf dst_leaf in
            let config' = (dst_leaf, memory') in
            flat_transitions :=
              {
                Fsm.t_src = config_name config;
                t_event = Option.value tr.Sc.tr_trigger ~default:"completion";
                t_guard = tr.Sc.tr_guard;
                t_actions = transition_actions info tr leaf dst_leaf;
                t_dst = config_name config';
              }
              :: !flat_transitions;
            explore config'))
        chart_transitions)
  in
  let initial_config = (initial_leaf, []) in
  explore initial_config;
  let states =
    Hashtbl.fold (fun name _ acc -> name :: acc) seen [] |> List.sort compare
  in
  let finals =
    Hashtbl.fold
      (fun name (leaf, _) acc ->
        if (state_exn info leaf).Sc.st_kind = Sc.Final then name :: acc else acc)
      seen []
    |> List.sort compare
  in
  Fsm.make ~finals ~name:chart.Sc.sc_name
    ~initial:(config_name initial_config)
    ~states
    (List.rev !flat_transitions)

let run chart =
  let info = index chart in
  (* Initial leaf: completion transition from a top-level Initial state. *)
  let top_initial =
    List.find_opt (fun (s : Sc.state) -> s.st_kind = Sc.Initial) chart.Sc.sc_states
  in
  let initial_leaf =
    match top_initial with
    | Some init -> (
        chart.Sc.sc_transitions
        |> List.find_opt (fun (tr : Sc.transition) ->
               String.equal tr.tr_source init.st_name && tr.tr_trigger = None)
        |> function
        | Some tr -> default_entry chart info tr.tr_target
        | None -> invalid_arg "flatten: initial pseudo-state has no outgoing transition")
    | None -> (
        match chart.Sc.sc_states with
        | first :: _ -> default_entry chart info first.st_name
        | [] -> invalid_arg "flatten: empty statechart")
  in
  let leaf_states =
    Hashtbl.fold
      (fun name s acc -> if is_leaf s then name :: acc else acc)
      info.by_name []
    |> List.sort compare
  in
  let finals =
    List.filter (fun n -> (state_exn info n).Sc.st_kind = Sc.Final) leaf_states
  in
  let flatten_transition (tr : Sc.transition) =
    let src_state = state_exn info tr.tr_source in
    if src_state.st_kind = Sc.Initial then []
    else
      let event = Option.value tr.tr_trigger ~default:"completion" in
      let dst_leaf = default_entry chart info tr.tr_target in
      leaves_under info tr.tr_source
      |> List.map (fun src_leaf ->
             {
               Fsm.t_src = src_leaf;
               t_event = event;
               t_guard = tr.tr_guard;
               t_actions = transition_actions info tr src_leaf dst_leaf;
               t_dst = dst_leaf;
             })
  in
  let history_composites =
    Hashtbl.fold
      (fun name s acc -> if s.Sc.st_history <> Sc.No_history then name :: acc else acc)
      info.by_name []
    |> List.sort compare
  in
  if history_composites <> [] then
    run_with_history chart info history_composites initial_leaf
  else
    let transitions = List.concat_map flatten_transition chart.Sc.sc_transitions in
    Fsm.make ~finals ~name:chart.Sc.sc_name ~initial:initial_leaf ~states:leaf_states
      transitions
