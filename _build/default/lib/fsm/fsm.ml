type transition = {
  t_src : string;
  t_event : string;
  t_guard : string option;
  t_actions : string list;
  t_dst : string;
}

type t = {
  fsm_name : string;
  states : string list;
  initial : string;
  finals : string list;
  transitions : transition list;
}

let make ?(finals = []) ~name ~initial ~states transitions =
  let known s = List.mem s states in
  if not (known initial) then
    invalid_arg (Printf.sprintf "fsm %s: initial state %s not declared" name initial);
  List.iter
    (fun s ->
      if not (known s) then
        invalid_arg (Printf.sprintf "fsm %s: final state %s not declared" name s))
    finals;
  List.iter
    (fun tr ->
      if not (known tr.t_src && known tr.t_dst) then
        invalid_arg
          (Printf.sprintf "fsm %s: transition %s->%s uses undeclared state" name tr.t_src
             tr.t_dst))
    transitions;
  { fsm_name = name; states; initial; finals; transitions }

let events t =
  t.transitions |> List.map (fun tr -> tr.t_event) |> List.sort_uniq compare

let transitions_from t state =
  List.filter (fun tr -> String.equal tr.t_src state) t.transitions

let is_deterministic t =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun tr ->
      match tr.t_guard with
      | Some _ -> true
      | None ->
          let key = (tr.t_src, tr.t_event) in
          if Hashtbl.mem seen key then false
          else (
            Hashtbl.replace seen key ();
            true))
    t.transitions

let reachable_states t =
  let seen = Hashtbl.create 16 in
  let rec visit s =
    if not (Hashtbl.mem seen s) then (
      Hashtbl.replace seen s ();
      List.iter (fun tr -> visit tr.t_dst) (transitions_from t s))
  in
  visit t.initial;
  List.filter (Hashtbl.mem seen) t.states

let prune_unreachable t =
  let keep = reachable_states t in
  {
    t with
    states = keep;
    finals = List.filter (fun s -> List.mem s keep) t.finals;
    transitions = List.filter (fun tr -> List.mem tr.t_src keep) t.transitions;
  }

type step = { before : string; event : string; after : string; actions : string list }

let step ?(guard_eval = fun _ -> true) t ~state ~event =
  let candidate =
    List.find_opt
      (fun tr ->
        String.equal tr.t_src state
        && String.equal tr.t_event event
        && match tr.t_guard with Some g -> guard_eval g | None -> true)
      t.transitions
  in
  Option.map
    (fun tr -> { before = state; event; after = tr.t_dst; actions = tr.t_actions })
    candidate

let run ?guard_eval t trace =
  let _, steps =
    List.fold_left
      (fun (state, acc) event ->
        match step ?guard_eval t ~state ~event with
        | Some s -> (s.after, s :: acc)
        | None -> (state, acc))
      (t.initial, []) trace
  in
  List.rev steps

let final_state ?guard_eval t trace =
  match List.rev (run ?guard_eval t trace) with
  | [] -> t.initial
  | last :: _ -> last.after

let simulate_equal a b traces =
  let actions m trace = List.concat_map (fun s -> s.actions) (run m trace) in
  let accepts m trace = List.mem (final_state m trace) m.finals in
  List.for_all
    (fun trace ->
      actions a trace = actions b trace
      && (a.finals = [] && b.finals = [] || accepts a trace = accepts b trace))
    traces

let pp ppf t =
  Format.fprintf ppf "@[<v>fsm %s (initial %s)" t.fsm_name t.initial;
  List.iter
    (fun tr ->
      Format.fprintf ppf "@,  %s --%s%s--> %s%s" tr.t_src tr.t_event
        (match tr.t_guard with Some g -> "[" ^ g ^ "]" | None -> "")
        tr.t_dst
        (match tr.t_actions with
        | [] -> ""
        | acts -> " / " ^ String.concat "; " acts))
    t.transitions;
  Format.fprintf ppf "@]"
