module Xml = Umlfront_xml.Xml

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let parse_one s = Xml.parse_string s

let escaping =
  [
    test "escape text ampersand" (fun () ->
        check Alcotest.string "amp" "a &amp; b" (Xml.escape_text "a & b"));
    test "escape text angle brackets" (fun () ->
        check Alcotest.string "lt-gt" "&lt;x&gt;" (Xml.escape_text "<x>"));
    test "escape attribute quotes" (fun () ->
        check Alcotest.string "quot" "&quot;hi&apos;" (Xml.escape_attribute "\"hi'"));
    test "text keeps quotes" (fun () ->
        check Alcotest.string "keep" "\"hi\"" (Xml.escape_text "\"hi\""));
  ]

let accessors =
  let doc =
    Xml.element ~attrs:[ ("id", "1"); ("name", "root") ] "model"
      [
        Xml.element ~attrs:[ ("k", "a") ] "child" [];
        Xml.text "hello";
        Xml.Comment "noise";
        Xml.element ~attrs:[ ("k", "b") ] "child" [ Xml.text "world" ];
        Xml.element "other" [];
      ]
  in
  [
    test "tag" (fun () -> check Alcotest.string "tag" "model" (Xml.tag doc));
    test "tag of text raises" (fun () ->
        Alcotest.check_raises "invalid" (Invalid_argument "Xml.tag: not an element")
          (fun () -> ignore (Xml.tag (Xml.text "x"))));
    test "attr present" (fun () ->
        check Alcotest.(option string) "attr" (Some "root") (Xml.attr "name" doc));
    test "attr missing" (fun () ->
        check Alcotest.(option string) "attr" None (Xml.attr "absent" doc));
    test "attr_exn raises" (fun () ->
        Alcotest.check_raises "not found" Not_found (fun () ->
            ignore (Xml.attr_exn "absent" doc)));
    test "children_named finds both" (fun () ->
        check Alcotest.int "count" 2 (List.length (Xml.children_named "child" doc)));
    test "child takes first" (fun () ->
        check Alcotest.(option string) "first" (Some "a")
          (Option.bind (Xml.child "child" doc) (Xml.attr "k")));
    test "element_children drops text and comments" (fun () ->
        check Alcotest.int "count" 3 (List.length (Xml.element_children doc)));
    test "text_content gathers descendants" (fun () ->
        check Alcotest.string "text" "helloworld" (Xml.text_content doc));
  ]

let parsing =
  [
    test "simple element" (fun () ->
        let e = parse_one "<a/>" in
        check Alcotest.string "tag" "a" (Xml.tag e));
    test "attributes single and double quotes" (fun () ->
        let e = parse_one "<a x=\"1\" y='2'/>" in
        check Alcotest.(option string) "x" (Some "1") (Xml.attr "x" e);
        check Alcotest.(option string) "y" (Some "2") (Xml.attr "y" e));
    test "nested elements" (fun () ->
        let e = parse_one "<a><b><c/></b></a>" in
        check Alcotest.int "depth" 1 (List.length (Xml.element_children e));
        let b = List.hd (Xml.element_children e) in
        check Alcotest.string "inner" "c" (Xml.tag (List.hd (Xml.element_children b))));
    test "text content" (fun () ->
        let e = parse_one "<a>hi there</a>" in
        check Alcotest.string "text" "hi there" (Xml.text_content e));
    test "entities decoded" (fun () ->
        let e = parse_one "<a>&lt;x&gt; &amp; &quot;y&quot; &apos;</a>" in
        check Alcotest.string "decoded" "<x> & \"y\" '" (Xml.text_content e));
    test "numeric character reference" (fun () ->
        let e = parse_one "<a>&#65;&#x42;</a>" in
        check Alcotest.string "decoded" "AB" (Xml.text_content e));
    test "entity in attribute" (fun () ->
        let e = parse_one "<a x=\"1 &amp; 2\"/>" in
        check Alcotest.(option string) "x" (Some "1 & 2") (Xml.attr "x" e));
    test "xml declaration skipped" (fun () ->
        let e = parse_one "<?xml version=\"1.0\"?><a/>" in
        check Alcotest.string "tag" "a" (Xml.tag e));
    test "doctype skipped" (fun () ->
        let e = parse_one "<!DOCTYPE html><a/>" in
        check Alcotest.string "tag" "a" (Xml.tag e));
    test "comments skipped" (fun () ->
        let e = parse_one "<a><!-- hidden --><b/></a>" in
        check Alcotest.int "children" 1 (List.length (Xml.element_children e)));
    test "cdata preserved verbatim" (fun () ->
        let e = parse_one "<a><![CDATA[<raw> & stuff]]></a>" in
        check Alcotest.string "cdata" "<raw> & stuff" (Xml.text_content e));
    test "mismatched closing tag rejected" (fun () ->
        match parse_one "<a><b></a></b>" with
        | exception Xml.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    test "trailing garbage rejected" (fun () ->
        match parse_one "<a/><b/>" with
        | exception Xml.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    test "unterminated string rejected" (fun () ->
        match parse_one "<a x=\"1/>" with
        | exception Xml.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    test "error carries line number" (fun () ->
        match parse_one "<a>\n<b>\n</c>\n</a>" with
        | exception Xml.Parse_error { line; _ } ->
            check Alcotest.bool "line >= 3" true (line >= 3)
        | _ -> Alcotest.fail "expected Parse_error");
    test "whitespace-only text dropped" (fun () ->
        let e = parse_one "<a>\n  <b/>\n</a>" in
        check Alcotest.int "children" 1 (List.length (Xml.children e)));
  ]

let equality =
  [
    test "equal ignores attribute order" (fun () ->
        let a = parse_one "<a x=\"1\" y=\"2\"/>" in
        let b = parse_one "<a y=\"2\" x=\"1\"/>" in
        check Alcotest.bool "equal" true (Xml.equal a b));
    test "equal ignores comments" (fun () ->
        check Alcotest.bool "equal" true
          (Xml.equal (parse_one "<a><b/></a>") (parse_one "<a><!--x--><b/></a>")));
    test "different attr values differ" (fun () ->
        check Alcotest.bool "differ" false
          (Xml.equal (parse_one "<a x=\"1\"/>") (parse_one "<a x=\"2\"/>")));
    test "different child order differs" (fun () ->
        check Alcotest.bool "differ" false
          (Xml.equal (parse_one "<a><b/><c/></a>") (parse_one "<a><c/><b/></a>")));
  ]

(* Random tree round-trip. *)
let gen_tree =
  let open QCheck.Gen in
  let tag = oneofl [ "alpha"; "beta"; "gamma"; "delta" ] in
  let attr_name = oneofl [ "id"; "name"; "kind"; "value" ] in
  let safe_string =
    string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; ' '; '&'; '<'; '>'; '"'; '\'' ]) (0 -- 8)
  in
  let rec tree depth =
    if depth = 0 then map2 (fun t attrs -> Xml.element ~attrs t []) tag
        (list_size (0 -- 3) (pair attr_name safe_string))
    else
      map3
        (fun t attrs children -> Xml.element ~attrs t children)
        tag
        (map
           (fun l ->
             (* Duplicate attribute names break round-tripping; dedupe. *)
             List.fold_left
               (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc)
               [] l)
           (list_size (0 -- 3) (pair attr_name safe_string)))
        (list_size (0 -- 3) (tree (depth - 1)))
  in
  tree 3

let properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"print/parse round-trip" ~count:200
         (QCheck.make gen_tree)
         (fun t -> Xml.equal t (Xml.parse_string (Xml.to_string t))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"escape_text never emits raw < or &" ~count:200
         QCheck.(string_of_size (QCheck.Gen.int_bound 50))
         (fun s ->
           let e = Xml.escape_text s in
           not (String.contains e '<')
           &&
           (* every & must begin an entity *)
           let ok = ref true in
           String.iteri
             (fun i c ->
               if c = '&' then
                 let rest = String.sub e i (min 6 (String.length e - i)) in
                 if
                   not
                     (List.exists
                        (fun p ->
                          String.length rest >= String.length p
                          && String.sub rest 0 (String.length p) = p)
                        [ "&amp;"; "&lt;"; "&gt;" ])
                 then ok := false)
             e;
           !ok));
  ]

let suite =
  [
    ("xml:escaping", escaping);
    ("xml:accessors", accessors);
    ("xml:parsing", parsing);
    ("xml:equality", equality);
    ("xml:properties", properties);
  ]
