(* Edge cases not covered by the feature suites: idle threads, multiple
   sequence diagrams, flat-style execution, odd mdl values, and small
   API corners. *)

module U = Umlfront_uml
module Core = Umlfront_core
module B = Umlfront_simulink.Block
module S = Umlfront_simulink.System
module Model = Umlfront_simulink.Model
module Parser = Umlfront_simulink.Mdl_parser
module Writer = Umlfront_simulink.Mdl_writer
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Lc = Umlfront_taskgraph.Linear_clustering
module G = Umlfront_taskgraph.Graph
module Cs = Umlfront_casestudies

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let arg = U.Sequence.arg
let f32 = U.Datatype.D_float

let mapping_corner_tests =
  [
    test "idle thread becomes an empty Thread-SS" (fun () ->
        let b = U.Builder.create "idle" in
        U.Builder.thread b "Busy";
        U.Builder.thread b "Idle";
        U.Builder.io_device b "IO";
        U.Builder.passive_object b ~cls:"W" "w";
        U.Builder.cpu b "CPU";
        U.Builder.allocate b ~thread:"Busy" ~cpu:"CPU";
        U.Builder.allocate b ~thread:"Idle" ~cpu:"CPU";
        U.Builder.call b ~from:"Busy" ~target:"IO" "getIn" ~result:(arg "x" f32);
        U.Builder.call b ~from:"Busy" ~target:"w" "f" ~args:[ arg "x" f32 ]
          ~result:(arg "y" f32);
        U.Builder.call b ~from:"Busy" ~target:"IO" "setOut" ~args:[ arg "y" f32 ];
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (U.Builder.finish b) in
        check Alcotest.int "both threads placed" 2
          (List.length (Umlfront_simulink.Caam.thread_names out.Core.Flow.caam));
        let outcome = Exec.run ~rounds:2 (Sdf.of_model out.Core.Flow.caam) in
        check Alcotest.int "runs" 2 outcome.Exec.rounds);
    test "behaviour split across two sequence diagrams" (fun () ->
        let b = U.Builder.create "twosd" in
        U.Builder.thread b "T";
        U.Builder.io_device b "IO";
        U.Builder.passive_object b ~cls:"W" "w";
        U.Builder.cpu b "CPU";
        U.Builder.allocate b ~thread:"T" ~cpu:"CPU";
        U.Builder.call b ~sd:"acquire" ~from:"T" ~target:"IO" "getIn"
          ~result:(arg "x" f32);
        U.Builder.call b ~sd:"process" ~from:"T" ~target:"w" "f" ~args:[ arg "x" f32 ]
          ~result:(arg "y" f32);
        U.Builder.call b ~sd:"process" ~from:"T" ~target:"IO" "setOut"
          ~args:[ arg "y" f32 ];
        let uml = U.Builder.finish b in
        check Alcotest.int "two diagrams" 2 (List.length uml.U.Model.sequences);
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment uml in
        check Alcotest.int "f block present" 1
          (let n = ref 0 in
           S.iter_systems
             (fun _ sys ->
               n := !n + List.length (S.blocks_of_type sys B.S_function))
             out.Core.Flow.caam.Model.root;
           !n));
    test "flat style output executes" (fun () ->
        let out =
          Core.Flow.run ~style:Core.Mapping.Flat ~strategy:Core.Flow.Use_deployment
            (Cs.Didactic.model ())
        in
        let outcome = Exec.run ~rounds:3 (Sdf.of_model out.Core.Flow.caam) in
        check Alcotest.int "runs" 3 outcome.Exec.rounds;
        check Alcotest.int "no channels in flat style" 0
          (out.Core.Flow.intra_channels + out.Core.Flow.inter_channels));
    test "uml2fsm without minimization keeps all states" (fun () ->
        let chart = Cs.Elevator_system.mode_chart in
        let g = Core.Uml2fsm.run_one ~minimize:false chart in
        check Alcotest.int "same machine"
          (List.length g.Core.Uml2fsm.fsm.Umlfront_fsm.Fsm.states)
          (List.length g.Core.Uml2fsm.minimized.Umlfront_fsm.Fsm.states));
  ]

let api_corner_tests =
  [
    test "run_bounded rejects zero clusters" (fun () ->
        let g = G.of_lists ~nodes:[ ("a", 1.0) ] ~edges:[] in
        match Lc.run_bounded ~max_clusters:0 g with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "remove_line on a missing line is a no-op" (fun () ->
        let sys = S.add_block (S.empty "s") B.Gain "g" in
        let sys' =
          S.remove_line sys ~src:{ S.block = "g"; S.port = 1 }
            ~dst:{ S.block = "g"; S.port = 1 }
        in
        check Alcotest.int "unchanged" (List.length (S.lines sys)) (List.length (S.lines sys')));
    test "mdl stop time with exponent round-trips" (fun () ->
        let m = Model.make ~stop_time:1.5e-3 ~name:"m" (S.empty "m") in
        let m' = Parser.parse_string (Writer.to_string m) in
        check (Alcotest.float 1e-12) "stop" 1.5e-3 m'.Model.stop_time);
    test "empty system mdl round-trips" (fun () ->
        let m = Model.make ~name:"empty" (S.empty "empty") in
        let m' = Parser.parse_string (Writer.to_string m) in
        check Alcotest.int "no blocks" 0 (S.total_blocks m'.Model.root));
    test "gantt of a flat model prints nothing" (fun () ->
        let out =
          Core.Flow.run ~style:Core.Mapping.Flat ~strategy:Core.Flow.Use_deployment
            (Cs.Didactic.model ())
        in
        (* flat actors have a thread path but no CPU grouping at depth 2;
           the chart still renders one lane per top-level subsystem *)
        let g = Umlfront_dataflow.Trace_export.gantt (Sdf.of_model out.Core.Flow.caam) in
        check Alcotest.bool "renders" true (String.length g >= 0));
    test "report caam tree names every channel protocol" (fun () ->
        let out = Core.Flow.run (Cs.Didactic.model ()) in
        let tree = Core.Report.caam_tree out.Core.Flow.caam in
        check Alcotest.bool "swfifo" true (Astring_contains.contains tree "channel SWFIFO");
        check Alcotest.bool "gfifo" true (Astring_contains.contains tree "channel GFIFO"));
    test "datatype array of named round-trips" (fun () ->
        let t = U.Datatype.D_array (U.Datatype.D_named ("pix", 3), 16) in
        check Alcotest.bool "rt" true
          (U.Datatype.equal t (U.Datatype.of_string (U.Datatype.to_string t)));
        check Alcotest.int "size" 48 (U.Datatype.size_bytes t));
    test "xml parse_file and save round-trip" (fun () ->
        let path = Filename.temp_file "umlfront" ".xml" in
        U.Xmi.save (Cs.Didactic.model ()) path;
        let reloaded = U.Xmi.load path in
        check Alcotest.int "still valid" 0 (List.length (U.Validate.check reloaded)));
  ]

let suite =
  [ ("coverage:mapping", mapping_corner_tests); ("coverage:api", api_corner_tests) ]
