module Meta = Umlfront_metamodel.Meta
module Mm = Umlfront_metamodel.Mmodel
module Ecore = Umlfront_metamodel.Ecore_io
module Trace = Umlfront_metamodel.Trace

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* A small library metamodel used throughout. *)
let library_mm =
  Meta.create ~name:"library"
    [
      Meta.metaclass "Named" ~abstract:true
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ];
      Meta.metaclass "Library" ~super:"Named"
        ~references:[ Meta.reference ~containment:true ~many:true "books" "Book" ];
      Meta.metaclass "Book" ~super:"Named"
        ~attributes:
          [
            Meta.attribute "pages" Meta.T_int;
            Meta.attribute "genre" (Meta.T_enum [ "novel"; "reference" ]);
          ]
        ~references:[ Meta.reference "author" "Author" ];
      Meta.metaclass "Author" ~super:"Named";
    ]

let meta_tests =
  [
    test "duplicate class rejected" (fun () ->
        match Meta.create ~name:"bad" [ Meta.metaclass "A"; Meta.metaclass "A" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "dangling super rejected" (fun () ->
        match Meta.create ~name:"bad" [ Meta.metaclass ~super:"Ghost" "A" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "dangling reference target rejected" (fun () ->
        match
          Meta.create ~name:"bad"
            [ Meta.metaclass "A" ~references:[ Meta.reference "r" "Ghost" ] ]
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "subclass reflexive" (fun () ->
        check Alcotest.bool "refl" true
          (Meta.is_subclass_of library_mm ~sub:"Book" ~super:"Book"));
    test "subclass transitive" (fun () ->
        check Alcotest.bool "trans" true
          (Meta.is_subclass_of library_mm ~sub:"Book" ~super:"Named"));
    test "subclass negative" (fun () ->
        check Alcotest.bool "neg" false
          (Meta.is_subclass_of library_mm ~sub:"Named" ~super:"Book"));
    test "inherited attributes visible" (fun () ->
        let names =
          List.map (fun a -> a.Meta.attr_name) (Meta.all_attributes library_mm "Book")
        in
        check Alcotest.(list string) "attrs" [ "name"; "pages"; "genre" ] names);
    test "concrete classes exclude abstract" (fun () ->
        check Alcotest.bool "no Named" false
          (List.mem "Named" (Meta.concrete_classes library_mm)));
    test "find_attribute inherited" (fun () ->
        check Alcotest.bool "found" true
          (Meta.find_attribute library_mm ~cls:"Author" "name" <> None));
  ]

let sample_model () =
  let m = Mm.create library_mm in
  let lib = Mm.new_object ~id:"lib" m "Library" in
  Mm.set_string m lib "name" "city";
  let book = Mm.new_object ~id:"b1" m "Book" in
  Mm.set_string m book "name" "ocaml";
  Mm.set_int m book "pages" 200;
  let author = Mm.new_object ~id:"a1" m "Author" in
  Mm.set_string m author "name" "xavier";
  Mm.add_ref m ~src:lib "books" ~dst:book;
  Mm.add_ref m ~src:book "author" ~dst:author;
  (m, lib, book, author)

let model_tests =
  [
    test "abstract class cannot be instantiated" (fun () ->
        let m = Mm.create library_mm in
        match Mm.new_object m "Named" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "unknown class rejected" (fun () ->
        let m = Mm.create library_mm in
        match Mm.new_object m "Ghost" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "duplicate id rejected" (fun () ->
        let m = Mm.create library_mm in
        ignore (Mm.new_object ~id:"x" m "Book");
        match Mm.new_object ~id:"x" m "Author" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "generated ids unique" (fun () ->
        let m = Mm.create library_mm in
        let a = Mm.new_object m "Book" and b = Mm.new_object m "Book" in
        check Alcotest.bool "distinct" true (Mm.id a <> Mm.id b));
    test "attribute type mismatch rejected" (fun () ->
        let m = Mm.create library_mm in
        let b = Mm.new_object m "Book" in
        match Mm.set_string m b "pages" "two hundred" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "enum accepts only literals" (fun () ->
        let m = Mm.create library_mm in
        let b = Mm.new_object m "Book" in
        Mm.set_string m b "genre" "novel";
        match Mm.set_string m b "genre" "cookbook" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "unknown attribute rejected" (fun () ->
        let m = Mm.create library_mm in
        let b = Mm.new_object m "Book" in
        match Mm.set_int m b "weight" 3 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "reference target class enforced" (fun () ->
        let m, _, book, _ = sample_model () in
        let wrong = Mm.new_object m "Library" in
        match Mm.add_ref m ~src:book "author" ~dst:wrong with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "single-valued reference replaces" (fun () ->
        let m, _, book, author = sample_model () in
        let other = Mm.new_object m "Author" in
        Mm.add_ref m ~src:book "author" ~dst:other;
        check Alcotest.(option string) "replaced" (Some (Mm.id other))
          (Option.map Mm.id (Mm.ref1 m book "author"));
        check Alcotest.bool "old gone" true
          (Mm.refs m book "author" |> List.for_all (fun o -> Mm.id o <> Mm.id author)));
    test "containment: second container rejected" (fun () ->
        let m, _, book, _ = sample_model () in
        let lib2 = Mm.new_object m "Library" in
        match Mm.add_ref m ~src:lib2 "books" ~dst:book with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "container lookup" (fun () ->
        let m, lib, book, author = sample_model () in
        check Alcotest.(option string) "book in lib" (Some (Mm.id lib))
          (Option.map Mm.id (Mm.container m book));
        check Alcotest.(option string) "author free" None
          (Option.map Mm.id (Mm.container m author)));
    test "roots excludes contained" (fun () ->
        let m, _, _, _ = sample_model () in
        check Alcotest.int "roots" 2 (List.length (Mm.roots m)));
    test "delete cascades containment and purges refs" (fun () ->
        let m, lib, book, _ = sample_model () in
        Mm.delete m lib;
        check Alcotest.bool "book gone" true (Mm.find m (Mm.id book) = None);
        check Alcotest.int "one left" 1 (Mm.size m));
    test "all_of_class includes subclasses" (fun () ->
        let m, _, _, _ = sample_model () in
        check Alcotest.int "named" 3 (List.length (Mm.all_of_class m "Named")));
    test "validate clean model" (fun () ->
        let m, _, _, _ = sample_model () in
        check Alcotest.int "no violations" 0 (List.length (Mm.validate m)));
    test "validate missing required attribute" (fun () ->
        let m = Mm.create library_mm in
        ignore (Mm.new_object m "Author");
        check Alcotest.bool "violation" true (Mm.validate m <> []));
  ]

let serialization_tests =
  [
    test "round-trip preserves size and values" (fun () ->
        let m, _, _, _ = sample_model () in
        let m' = Ecore.of_string library_mm (Ecore.to_string m) in
        check Alcotest.int "size" (Mm.size m) (Mm.size m');
        let book = Mm.find_exn m' "b1" in
        check Alcotest.(option int) "pages" (Some 200) (Mm.get_int book "pages");
        check Alcotest.(option string) "author ref" (Some "a1")
          (Option.map Mm.id (Mm.ref1 m' book "author")));
    test "round-trip preserves containment" (fun () ->
        let m, _, _, _ = sample_model () in
        let m' = Ecore.of_string library_mm (Ecore.to_string m) in
        check Alcotest.(option string) "container" (Some "lib")
          (Option.map Mm.id (Mm.container m' (Mm.find_exn m' "b1"))));
    test "stable after second round-trip" (fun () ->
        let m, _, _, _ = sample_model () in
        let once = Ecore.to_string (Ecore.of_string library_mm (Ecore.to_string m)) in
        let twice = Ecore.to_string (Ecore.of_string library_mm once) in
        check Alcotest.string "fixpoint" once twice);
    test "unknown feature rejected" (fun () ->
        match
          Ecore.of_string library_mm
            "<model metamodel=\"library\"><Book id=\"b\" weight=\"3\"/></model>"
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "missing id rejected" (fun () ->
        match Ecore.of_string library_mm "<model metamodel=\"library\"><Book/></model>" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let trace_tests =
  [
    test "targets_of finds recorded link" (fun () ->
        let t = Trace.create () in
        Trace.record t ~rule:"r1" ~sources:[ "a" ] ~targets:[ "x"; "y" ];
        check Alcotest.(list string) "targets" [ "x"; "y" ] (Trace.targets_of t "a"));
    test "rule filter" (fun () ->
        let t = Trace.create () in
        Trace.record t ~rule:"r1" ~sources:[ "a" ] ~targets:[ "x" ];
        Trace.record t ~rule:"r2" ~sources:[ "a" ] ~targets:[ "y" ];
        check Alcotest.(list string) "only r2" [ "y" ] (Trace.targets_of ~rule:"r2" t "a"));
    test "sources_of inverse" (fun () ->
        let t = Trace.create () in
        Trace.record t ~rule:"r" ~sources:[ "a"; "b" ] ~targets:[ "x" ];
        check Alcotest.(list string) "sources" [ "a"; "b" ] (Trace.sources_of t "x"));
    test "rules deduped sorted" (fun () ->
        let t = Trace.create () in
        Trace.record t ~rule:"z" ~sources:[] ~targets:[];
        Trace.record t ~rule:"a" ~sources:[] ~targets:[];
        Trace.record t ~rule:"z" ~sources:[] ~targets:[];
        check Alcotest.(list string) "rules" [ "a"; "z" ] (Trace.rules t));
    test "links in recording order" (fun () ->
        let t = Trace.create () in
        Trace.record t ~rule:"first" ~sources:[] ~targets:[];
        Trace.record t ~rule:"second" ~sources:[] ~targets:[];
        check Alcotest.(list string) "order" [ "first"; "second" ]
          (List.map (fun l -> l.Trace.rule) (Trace.links t)));
  ]

let suite =
  [
    ("metamodel:meta", meta_tests);
    ("metamodel:model", model_tests);
    ("metamodel:serialization", serialization_tests);
    ("metamodel:trace", trace_tests);
  ]
