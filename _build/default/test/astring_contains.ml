(* Substring search helper shared by test modules. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    at 0
