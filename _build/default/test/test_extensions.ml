(* Tests for the extension features: activity diagrams (§6 future
   work), design-space exploration, the explicit-metamodel bridges, the
   generic-engine statechart transformation, auto-layout, SystemC
   generation, and trace export. *)

module U = Umlfront_uml
module Core = Umlfront_core
module S = Umlfront_simulink.System
module B = Umlfront_simulink.Block
module Model = Umlfront_simulink.Model
module Layout = Umlfront_simulink.Layout
module Mm = Umlfront_metamodel.Mmodel
module Ecore = Umlfront_metamodel.Ecore_io
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Export = Umlfront_dataflow.Trace_export
module Fsm = Umlfront_fsm.Fsm
module Cs = Umlfront_casestudies

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let contains = Astring_contains.contains
let f32 = U.Datatype.D_float
let arg = U.Sequence.arg

let sample_activity =
  U.Activity.make ~name:"act" ~owner:"T"
    [
      U.Activity.Initial "start";
      U.Activity.action ~name:"a1" ~target:"io" ~result:(arg "x" f32) "getIn";
      U.Activity.Fork "split";
      U.Activity.action ~name:"a2" ~target:"w" ~args:[ arg "x" f32 ]
        ~result:(arg "y" f32) "left";
      U.Activity.action ~name:"a3" ~target:"w" ~args:[ arg "x" f32 ]
        ~result:(arg "z" f32) "right";
      U.Activity.Join "meet";
      U.Activity.action ~name:"a4" ~target:"w" ~args:[ arg "y" f32; arg "z" f32 ]
        ~result:(arg "r" f32) "merge";
      U.Activity.Final "stop";
    ]
    [
      U.Activity.edge ~source:"start" ~target:"a1" ();
      U.Activity.edge ~source:"a1" ~target:"split" ();
      U.Activity.edge ~source:"split" ~target:"a2" ();
      U.Activity.edge ~source:"split" ~target:"a3" ();
      U.Activity.edge ~source:"a2" ~target:"meet" ();
      U.Activity.edge ~source:"a3" ~target:"meet" ();
      U.Activity.edge ~source:"meet" ~target:"a4" ();
      U.Activity.edge ~source:"a4" ~target:"stop" ();
    ]

let activity_tests =
  [
    test "well-formed activity passes" (fun () ->
        check Alcotest.int "clean" 0 (List.length (U.Activity.check sample_activity)));
    test "two initial nodes flagged" (fun () ->
        let a =
          U.Activity.make ~name:"a" ~owner:"T"
            [ U.Activity.Initial "i1"; U.Activity.Initial "i2" ]
            []
        in
        check Alcotest.bool "flagged" true (U.Activity.check a <> []));
    test "dangling edge flagged" (fun () ->
        let a =
          U.Activity.make ~name:"a" ~owner:"T"
            [ U.Activity.Initial "i" ]
            [ U.Activity.edge ~source:"i" ~target:"ghost" () ]
        in
        check Alcotest.bool "flagged" true (U.Activity.check a <> []));
    test "unreachable action flagged" (fun () ->
        let a =
          U.Activity.make ~name:"a" ~owner:"T"
            [
              U.Activity.Initial "i";
              U.Activity.action ~name:"orphan" ~target:"w" "op";
            ]
            []
        in
        check Alcotest.bool "flagged" true (U.Activity.check a <> []));
    test "control-flow cycle flagged" (fun () ->
        let a =
          U.Activity.make ~name:"a" ~owner:"T"
            [
              U.Activity.Initial "i";
              U.Activity.action ~name:"x" ~target:"w" "op";
              U.Activity.action ~name:"y" ~target:"w" "op2";
            ]
            [
              U.Activity.edge ~source:"i" ~target:"x" ();
              U.Activity.edge ~source:"x" ~target:"y" ();
              U.Activity.edge ~source:"y" ~target:"x" ();
            ]
        in
        check Alcotest.bool "flagged" true (U.Activity.check a <> []));
    test "to_messages respects control order" (fun () ->
        let msgs = U.Activity.to_messages sample_activity in
        check Alcotest.(list string) "ops" [ "getIn"; "left"; "right"; "merge" ]
          (List.map (fun (m : U.Sequence.message) -> m.U.Sequence.msg_operation) msgs);
        check Alcotest.bool "owner is caller" true
          (List.for_all
             (fun (m : U.Sequence.message) -> m.U.Sequence.msg_from = "T")
             msgs));
    test "model behaviours merges activities" (fun () ->
        let uml = Cs.Elevator_system.model () in
        let bhv = U.Model.behaviours uml in
        check Alcotest.bool "synthetic diagram added" true (List.length bhv >= 1);
        let total_msgs =
          List.fold_left (fun n sd -> n + List.length sd.U.Sequence.sd_messages) 0 bhv
        in
        check Alcotest.int "all actions linearized" 9 total_msgs);
    test "activity XMI round-trip" (fun () ->
        let uml = Cs.Elevator_system.model () in
        let uml' = U.Xmi.of_string (U.Xmi.to_string uml) in
        check Alcotest.int "activities kept" 3 (List.length uml'.U.Model.activities);
        let once = U.Xmi.to_string uml' in
        check Alcotest.string "fixpoint" once (U.Xmi.to_string (U.Xmi.of_string once)));
    test "flow consumes activity-specified threads" (fun () ->
        let out = Core.Flow.run (Cs.Elevator_system.model ()) in
        check Alcotest.int "one barrier" 1 out.Core.Flow.delays_inserted;
        check Alcotest.(list string) "caam ok" []
          (Umlfront_simulink.Caam.check out.Core.Flow.caam));
  ]

let dse_tests =
  [
    test "explore covers every platform size once" (fun () ->
        let r = Core.Dse.explore (Cs.Synthetic_system.model ()) in
        let sizes = List.map (fun c -> c.Core.Dse.cpus) r.Core.Dse.candidates in
        check Alcotest.bool "ascending distinct" true
          (List.sort_uniq compare sizes = sizes));
    test "best has minimal makespan" (fun () ->
        let r = Core.Dse.explore (Cs.Synthetic_system.model ()) in
        List.iter
          (fun c ->
            check Alcotest.bool "best <= candidate" true
              (r.Core.Dse.best.Core.Dse.makespan <= c.Core.Dse.makespan +. 1e-9))
          r.Core.Dse.candidates);
    test "pareto set is mutually non-dominating" (fun () ->
        let r = Core.Dse.explore (Cs.Synthetic_system.model ()) in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if a != b then
                  check Alcotest.bool "no domination" false
                    (a.Core.Dse.cpus <= b.Core.Dse.cpus
                    && a.Core.Dse.makespan <= b.Core.Dse.makespan -. 1e-9))
              r.Core.Dse.pareto)
          r.Core.Dse.pareto);
    test "single-CPU candidate has no inter-CPU traffic" (fun () ->
        let r = Core.Dse.explore (Cs.Synthetic_system.model ()) in
        match List.find_opt (fun c -> c.Core.Dse.cpus = 1) r.Core.Dse.candidates with
        | Some c -> check Alcotest.int "no gfifo" 0 c.Core.Dse.inter_tokens
        | None -> Alcotest.fail "no single-CPU candidate");
    test "period never exceeds makespan and improves with CPUs" (fun () ->
        let r = Core.Dse.explore (Cs.Synthetic_system.model ()) in
        List.iter
          (fun c ->
            check Alcotest.bool "period <= makespan" true
              (c.Core.Dse.period <= c.Core.Dse.makespan +. 1e-9))
          r.Core.Dse.candidates;
        let by_cpus = List.map (fun c -> (c.Core.Dse.cpus, c.Core.Dse.period)) r.Core.Dse.candidates in
        let rec monotone = function
          | (_, p1) :: ((_, p2) :: _ as rest) ->
              check Alcotest.bool "period non-increasing" true (p2 <= p1 +. 1e-9);
              monotone rest
          | [ _ ] | [] -> ()
        in
        monotone by_cpus);
    test "same-signal read and write get distinct top ports" (fun () ->
        let b = U.Builder.create "loopback" in
        U.Builder.thread b "T";
        U.Builder.passive_object b ~cls:"W" "w";
        U.Builder.io_device b "IO";
        U.Builder.cpu b "CPU";
        U.Builder.allocate b ~thread:"T" ~cpu:"CPU";
        U.Builder.call b ~from:"T" ~target:"IO" "getSample" ~result:(arg "x" f32);
        U.Builder.call b ~from:"T" ~target:"w" "f" ~args:[ arg "x" f32 ]
          ~result:(arg "y" f32);
        U.Builder.call b ~from:"T" ~target:"IO" "setSample" ~args:[ arg "y" f32 ];
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (U.Builder.finish b) in
        check Alcotest.int "structural" 0 (List.length (Model.validate out.Core.Flow.caam));
        check Alcotest.int "1 in 1 out" 2
          (List.length (S.blocks_of_type out.Core.Flow.caam.Model.root B.Inport)
          + List.length (S.blocks_of_type out.Core.Flow.caam.Model.root B.Outport)));
    test "threadless model rejected" (fun () ->
        let uml = U.Model.make "empty" in
        match Core.Dse.explore uml with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "summary marks best and pareto" (fun () ->
        let r = Core.Dse.explore (Cs.Synthetic_system.model ()) in
        let s = Core.Dse.summary r in
        check Alcotest.bool "best marked" true (contains s "<- best");
        check Alcotest.bool "pareto marked" true (contains s "pareto"));
  ]

let metamodel_bridge_tests =
  [
    test "uml_to_mmodel conforms to the uml metamodel" (fun () ->
        let m = Core.Metamodels.uml_to_mmodel (Cs.Didactic.model ()) in
        check Alcotest.int "valid" 0 (List.length (Mm.validate m)));
    test "simulink round-trip preserves the CAAM" (fun () ->
        let out = Core.Flow.run (Cs.Didactic.model ()) in
        let dynamic = Core.Metamodels.simulink_to_mmodel out.Core.Flow.caam in
        check Alcotest.int "valid" 0 (List.length (Mm.validate dynamic));
        let back = Core.Metamodels.mmodel_to_simulink dynamic in
        check Alcotest.string "identical mdl"
          (Umlfront_simulink.Mdl_writer.to_string out.Core.Flow.caam)
          (Umlfront_simulink.Mdl_writer.to_string back));
    test "ecore XML of the CAAM parses back" (fun () ->
        let out = Core.Flow.run (Cs.Didactic.model ()) in
        let xml = Core.Flow.ecore_xml out in
        let reloaded = Ecore.of_string Core.Metamodels.simulink_mm xml in
        let back = Core.Metamodels.mmodel_to_simulink reloaded in
        check Alcotest.(list (pair string int)) "stats" (Model.stats out.Core.Flow.caam)
          (Model.stats back));
    test "fsm round-trip preserves behaviour" (fun () ->
        let chart = Cs.Elevator_system.mode_chart in
        let fsm = Umlfront_fsm.Flatten.run chart in
        let back =
          match Core.Metamodels.mmodel_to_fsms (Core.Metamodels.fsm_to_mmodel fsm) with
          | [ f ] -> f
          | _ -> Alcotest.fail "expected one fsm"
        in
        let traces =
          [ [ "call_above"; "arrived" ]; [ "call_below"; "reverse"; "arrived"; "timeout" ] ]
        in
        check Alcotest.bool "equal" true (Fsm.simulate_equal fsm back traces));
  ]

let m2m_tests =
  [
    test "generic engine agrees with the typed pipeline" (fun () ->
        let uml = Cs.Elevator_system.model () in
        let typed = Core.Uml2fsm.run uml in
        let generic = Core.M2m.run uml in
        check Alcotest.(list string) "names" (List.map fst typed) (List.map fst generic);
        List.iter
          (fun (name, (g : Core.Uml2fsm.generated)) ->
            let via_engine = List.assoc name generic in
            let events = Fsm.events g.Core.Uml2fsm.fsm in
            let traces =
              [ events; List.rev events; events @ events; [] ]
            in
            check Alcotest.bool name true
              (Fsm.simulate_equal g.Core.Uml2fsm.fsm via_engine traces))
          typed);
    test "trace links every chart element" (fun () ->
        let uml = Cs.Elevator_system.model () in
        let _, links = Core.M2m.run_traced uml in
        check Alcotest.bool "chart rule" true
          (List.mem "chart2fsm" (Umlfront_metamodel.Trace.rules links));
        check Alcotest.bool "states rule" true
          (List.mem "state2state" (Umlfront_metamodel.Trace.rules links)));
    test "initial state preserved" (fun () ->
        let uml = Cs.Elevator_system.model () in
        let generic = Core.M2m.run uml in
        let fsm = List.assoc "elevator_mode" generic in
        check Alcotest.string "idle" "idle" fsm.Fsm.initial);
  ]

let layout_tests =
  [
    test "every block gets a position" (fun () ->
        let out = Core.Flow.run (Cs.Didactic.model ()) in
        let missing = ref 0 in
        S.iter_systems
          (fun _ sys ->
            List.iter
              (fun b -> if Layout.position b = None then incr missing)
              (S.blocks sys))
          out.Core.Flow.caam.Model.root;
        check Alcotest.int "none missing" 0 !missing);
    test "no two blocks of a system overlap" (fun () ->
        let out = Core.Flow.run (Cs.Synthetic_system.model ()) in
        S.iter_systems
          (fun _ sys ->
            let boxes = List.filter_map Layout.position (S.blocks sys) in
            let overlap (l1, t1, r1, b1) (l2, t2, r2, b2) =
              l1 < r2 && l2 < r1 && t1 < b2 && t2 < b1
            in
            let rec pairs = function
              | [] -> ()
              | x :: rest ->
                  List.iter
                    (fun y -> check Alcotest.bool "no overlap" false (overlap x y))
                    rest;
                  pairs rest
            in
            pairs boxes)
          out.Core.Flow.caam.Model.root);
    test "dataflow goes left to right" (fun () ->
        let out = Core.Flow.run (Cs.Didactic.model ()) in
        let sys = out.Core.Flow.caam.Model.root in
        List.iter
          (fun (l : S.line) ->
            match
              ( Layout.position (S.find_block_exn sys l.S.src.S.block),
                Layout.position (S.find_block_exn sys l.S.dst.S.block) )
            with
            | Some (sl, _, _, _), Some (dl, _, _, _) ->
                check Alcotest.bool "monotone x" true (sl <= dl)
            | _, _ -> Alcotest.fail "missing position")
          (S.lines sys));
    test "cyclic systems still lay out" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Crane_system.model ()) in
        (* Tcontrol holds the feedback loop; all its blocks placed. *)
        check Alcotest.int "structural" 0
          (List.length (Model.validate out.Core.Flow.caam)));
    test "mdl with positions round-trips" (fun () ->
        let out = Core.Flow.run (Cs.Didactic.model ()) in
        let reparsed =
          Umlfront_simulink.Mdl_parser.parse_string out.Core.Flow.mdl
        in
        check Alcotest.(list (pair string int)) "stats" (Model.stats out.Core.Flow.caam)
          (Model.stats reparsed));
  ]

let systemc_tests =
  [
    test "module per thread and fifo plumbing" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Didactic.model ()) in
        let sc = Umlfront_codegen.Gen_systemc.generate out.Core.Flow.caam in
        check Alcotest.bool "module T1" true (contains sc "SC_MODULE(Thread_CPU1_T1)");
        check Alcotest.bool "module T3" true (contains sc "SC_MODULE(Thread_CPU2_T3)");
        check Alcotest.bool "env" true (contains sc "SC_MODULE(Environment)");
        check Alcotest.bool "fifo decl" true (contains sc "sc_fifo<double>");
        check Alcotest.bool "sc_main" true (contains sc "int sc_main");
        check Alcotest.bool "protocol comment" true (contains sc "GFIFO"));
    test "delay becomes module state" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Crane_system.model ()) in
        let sc = Umlfront_codegen.Gen_systemc.generate out.Core.Flow.caam in
        check Alcotest.bool "state member" true (contains sc "double state_"));
    test "balanced braces" (fun () ->
        let out = Core.Flow.run (Cs.Synthetic_system.model ()) in
        let sc = Umlfront_codegen.Gen_systemc.generate out.Core.Flow.caam in
        let depth = ref 0 in
        String.iter
          (fun c ->
            if c = '{' then incr depth else if c = '}' then decr depth)
          sc;
        check Alcotest.int "balanced" 0 !depth);
  ]

let export_tests =
  [
    test "csv has a row per round" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Crane_system.model ()) in
        let sdf = Sdf.of_model out.Core.Flow.caam in
        let csv = Export.traces_csv (Exec.run ~rounds:5 sdf) in
        let lines = String.split_on_char '\n' (String.trim csv) in
        check Alcotest.int "header + 5" 6 (List.length lines);
        check Alcotest.bool "header" true (contains (List.hd lines) "round,"));
    test "schedule csv covers every placed actor" (fun () ->
        let out = Core.Flow.run (Cs.Didactic.model ()) in
        let sdf = Sdf.of_model out.Core.Flow.caam in
        let csv = Export.schedule_csv sdf in
        let placed =
          List.filter (fun (a : Sdf.actor) -> a.Sdf.actor_path <> []) sdf.Sdf.actors
        in
        let rows = List.length (String.split_on_char '\n' (String.trim csv)) - 1 in
        check Alcotest.int "rows" (List.length placed) rows);
    test "gantt prints one lane per cpu" (fun () ->
        let out = Core.Flow.run (Cs.Synthetic_system.model ()) in
        let sdf = Sdf.of_model out.Core.Flow.caam in
        let lanes = String.split_on_char '\n' (String.trim (Export.gantt sdf)) in
        check Alcotest.int "4 lanes" 4 (List.length lanes));
  ]

let plantuml_tests =
  [
    test "every diagram kind is exported" (fun () ->
        let uml = Cs.Elevator_system.model () in
        let diagrams = U.Plantuml.model uml in
        check Alcotest.int "1 classes + 3 activities + 1 chart" 5 (List.length diagrams);
        List.iter
          (fun (_, text) ->
            check Alcotest.bool "delimited" true
              (contains text "@startuml" && contains text "@enduml"))
          diagrams);
    test "sequence export shows calls and returns" (fun () ->
        let uml = Cs.Didactic.model () in
        let text =
          List.assoc "main" (U.Plantuml.model uml)
        in
        check Alcotest.bool "call" true (contains text "\"T1\" -> \"calcObj\" : calc(a)");
        check Alcotest.bool "return" true (contains text "\"calcObj\" --> \"T1\" : r1"));
    test "deployment export carries the SPT stereotypes" (fun () ->
        let uml = Cs.Didactic.model () in
        let text = List.assoc "didactic_deployment" (U.Plantuml.model uml) in
        check Alcotest.bool "engine" true (contains text "<<SAengine>>");
        check Alcotest.bool "thread" true (contains text "<<SASchedRes>>");
        check Alcotest.bool "bus link" true (contains text "\"CPU1\" -- \"bus\""));
    test "statechart export nests composites and initial" (fun () ->
        let text = U.Plantuml.statechart Cs.Elevator_system.mode_chart in
        check Alcotest.bool "nested" true (contains text "state \"moving\" {");
        check Alcotest.bool "initial" true (contains text "[*] --> \"idle\"");
        check Alcotest.bool "trigger" true (contains text ": arrived"));
  ]

let metrics_tests =
  [
    test "didactic metrics hand-checked" (fun () ->
        let x = U.Metrics.measure (Cs.Didactic.model ()) in
        check Alcotest.int "threads" 3 x.U.Metrics.threads;
        (* calc, dec, mult, gain, filter *)
        check Alcotest.int "functional" 5 x.U.Metrics.functional_calls;
        (* GetValue + SetValue *)
        check Alcotest.int "comm" 2 x.U.Metrics.comm_messages;
        check Alcotest.int "io" 2 x.U.Metrics.io_calls;
        (* r1 feeds dec and mult: reuse above 1 *)
        check Alcotest.bool "reuse > 1" true (x.U.Metrics.token_reuse > 1.0));
    test "fan-in/out follow data direction" (fun () ->
        let x = U.Metrics.measure (Cs.Didactic.model ()) in
        (* T3 provides data to T1 (Get), T1 sends to T2 *)
        check Alcotest.(option int) "T3 out" (Some 1) (List.assoc_opt "T3" x.U.Metrics.fan_out);
        check Alcotest.(option int) "T1 in" (Some 1) (List.assoc_opt "T1" x.U.Metrics.fan_in);
        check Alcotest.(option int) "T2 out" (Some 0) (List.assoc_opt "T2" x.U.Metrics.fan_out));
    test "report text mentions every thread" (fun () ->
        let text = U.Metrics.report (Cs.Synthetic_system.model ()) in
        List.iter
          (fun th -> check Alcotest.bool th true (contains text th))
          Cs.Synthetic_system.thread_names);
  ]

let kpn_gen_tests =
  [
    test "kpn emission names channels and outputs" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (Cs.Crane_system.model ()) in
        let ml = Umlfront_codegen.Gen_kpn.generate out.Core.Flow.caam in
        check Alcotest.bool "channel binding" true (contains ml "let ch_");
        check Alcotest.bool "embedded mdl" true (contains ml "{mdl|Model {");
        check Alcotest.bool "runner" true (contains ml "Kpn.run (network ())");
        check Alcotest.bool "output filter" true (contains ml "\"Voltage\""));
    test "embedded mdl in kpn emission reparses" (fun () ->
        let out = Core.Flow.run (Cs.Didactic.model ()) in
        let ml = Umlfront_codegen.Gen_kpn.generate out.Core.Flow.caam in
        (* extract the {mdl|...|mdl} payload and reparse it *)
        let index_of needle from =
          let n = String.length needle in
          let rec at i =
            if i + n > String.length ml then Alcotest.fail ("missing " ^ needle)
            else if String.sub ml i n = needle then i
            else at (i + 1)
          in
          at from
        in
        let start = index_of "{mdl|" 0 + 5 in
        let stop = index_of "|mdl}" start in
        let payload = String.sub ml start (stop - start) in
        let reparsed = Umlfront_simulink.Mdl_parser.parse_string payload in
        check Alcotest.(list (pair string int)) "stats" (Model.stats out.Core.Flow.caam)
          (Model.stats reparsed));
  ]

let audit_tests =
  [
    test "case studies audit clean" (fun () ->
        List.iter
          (fun (name, uml, strategy) ->
            let out = Core.Flow.run ~strategy uml in
            check Alcotest.(list string) name []
              (List.map
                 (fun (f : Core.Consistency.finding) ->
                   f.Core.Consistency.subject ^ ": " ^ f.Core.Consistency.problem)
                 (Core.Consistency.audit uml out)))
          [
            ("didactic", Cs.Didactic.model (), Core.Flow.Use_deployment);
            ("crane", Cs.Crane_system.model (), Core.Flow.Use_deployment);
            ("synthetic", Cs.Synthetic_system.model (), Core.Flow.Infer_linear);
            ("mjpeg", Cs.Mjpeg_system.model (), Core.Flow.Infer_linear);
            ("elevator", Cs.Elevator_system.model (), Core.Flow.Prefer_deployment);
          ]);
    test "audit flags a doctored trace target" (fun () ->
        let uml = Cs.Didactic.model () in
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment uml in
        Umlfront_metamodel.Trace.record out.Core.Flow.trace ~rule:"thread_to_thread_ss"
          ~sources:[ "T1" ] ~targets:[ "CPU9/Ghost" ];
        check Alcotest.bool "flagged" true (Core.Consistency.audit uml out <> []));
    test "audit report prints clean" (fun () ->
        let uml = Cs.Didactic.model () in
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment uml in
        check Alcotest.bool "clean" true
          (contains (Core.Consistency.audit_report uml out) "clean"));
  ]

let dot_tests =
  [
    test "task graph dot lists nodes and weighted edges" (fun () ->
        let g = Core.Allocation.task_graph (Cs.Synthetic_system.model ()) in
        let d = Umlfront_taskgraph.Dot.graph g in
        check Alcotest.bool "digraph" true (contains d "digraph");
        check Alcotest.bool "node A" true (contains d "\"A\"");
        check Alcotest.bool "edge label" true (contains d "label=\"10\""));
    test "clustered dot draws one box per CPU" (fun () ->
        let g = Core.Allocation.task_graph (Cs.Synthetic_system.model ()) in
        let c = Umlfront_taskgraph.Linear_clustering.run g in
        let d = Umlfront_taskgraph.Dot.clustered g c in
        List.iter
          (fun i ->
            check Alcotest.bool (Printf.sprintf "cluster_%d" i) true
              (contains d (Printf.sprintf "subgraph cluster_%d" i)))
          [ 0; 1; 2; 3 ]);
    test "block diagram dot nests subsystems and resolves boundary ports" (fun () ->
        let out = Core.Flow.run (Cs.Didactic.model ()) in
        let d = Umlfront_simulink.Block_dot.of_model out.Core.Flow.caam in
        check Alcotest.bool "cluster label" true (contains d "label=\"T1\"");
        check Alcotest.bool "no unresolved port" false (contains d "__?");
        check Alcotest.bool "channel shape" true (contains d "parallelogram"));
  ]

let example_smoke_tests =
  let run_example name =
    test (name ^ " example runs") (fun () ->
        let bin = Printf.sprintf "../examples/%s.exe" name in
        if Sys.file_exists bin then
          check Alcotest.int "exit 0" 0 (Sys.command (bin ^ " >/dev/null 2>&1")))
  in
  List.map run_example
    [ "quickstart"; "crane"; "synthetic"; "mjpeg"; "elevator"; "autopartition" ]

let cli_tests =
  [
    test "umlfront example | map | dse round-trip" (fun () ->
        let bin = "../bin/umlfront.exe" in
        if not (Sys.file_exists bin) then ()
        else begin
          let tmp = Filename.temp_file "umlfront_cli" ".xml" in
          check Alcotest.int "example" 0
            (Sys.command (Printf.sprintf "%s example crane -o %s >/dev/null" bin tmp));
          let mdl = Filename.temp_file "umlfront_cli" ".mdl" in
          check Alcotest.int "map" 0
            (Sys.command (Printf.sprintf "%s map %s -o %s >/dev/null" bin tmp mdl));
          let parsed = Umlfront_simulink.Mdl_parser.parse_file mdl in
          check Alcotest.string "model name" "crane" parsed.Model.model_name;
          check Alcotest.int "dse" 0
            (Sys.command (Printf.sprintf "%s dse %s >/dev/null" bin tmp))
        end);
  ]

let suite =
  [
    ("ext:activity", activity_tests);
    ("ext:dse", dse_tests);
    ("ext:metamodels", metamodel_bridge_tests);
    ("ext:m2m", m2m_tests);
    ("ext:layout", layout_tests);
    ("ext:systemc", systemc_tests);
    ("ext:export", export_tests);
    ("ext:plantuml", plantuml_tests);
    ("ext:metrics", metrics_tests);
    ("ext:kpn_gen", kpn_gen_tests);
    ("ext:audit", audit_tests);
    ("ext:dot", dot_tests);
    ("ext:examples", example_smoke_tests);
    ("ext:cli", cli_tests);
  ]
