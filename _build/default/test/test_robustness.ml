(* Fuzzing and cross-cutting property tests: parsers never escape their
   declared error types, partitioning preserves behaviour on random
   monolithic models, capture round-trips random flow outputs, and the
   granularity metric behaves per Gerasoulis & Yang. *)

module Xml = Umlfront_xml.Xml
module Parser = Umlfront_simulink.Mdl_parser
module Writer = Umlfront_simulink.Mdl_writer
module Model = Umlfront_simulink.Model
module Caam = Umlfront_simulink.Caam
module U = Umlfront_uml
module Core = Umlfront_core
module G = Umlfront_taskgraph.Graph
module C = Umlfront_taskgraph.Clustering
module Gen = Umlfront_taskgraph.Generator
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let arg = U.Sequence.arg
let f32 = U.Datatype.D_float

let fuzz_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"xml parser only raises Parse_error" ~count:500
         QCheck.(string_of_size (QCheck.Gen.int_bound 60))
         (fun junk ->
           match Xml.parse_string junk with
           | _ -> true
           | exception Xml.Parse_error _ -> true
           | exception _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mdl parser only raises Error" ~count:500
         QCheck.(string_of_size (QCheck.Gen.int_bound 60))
         (fun junk ->
           match Parser.parse_string junk with
           | _ -> true
           | exception Parser.Error _ -> true
           | exception Invalid_argument _ -> true  (* bad BlockType name *)
           | exception _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"xml parser survives mutated valid documents" ~count:200
         QCheck.(pair (QCheck.make QCheck.Gen.(int_bound 1_000_000)) (QCheck.make QCheck.Gen.(int_bound 200)))
         (fun (seed, pos) ->
           let doc = U.Xmi.to_string (Umlfront_casestudies.Didactic.model ()) in
           let state = Random.State.make [| seed |] in
           let bytes = Bytes.of_string doc in
           let p = pos mod Bytes.length bytes in
           Bytes.set bytes p (Char.chr (Random.State.int state 128));
           match Xml.parse_string (Bytes.to_string bytes) with
           | _ -> true
           | exception Xml.Parse_error _ -> true
           | exception _ -> false));
    test "mdl tokenizer skips # comments" (fun () ->
        let text =
          "Model {\n# a comment line\n  Name \"m\"\n  System {\n    Name \"m\"\n  }\n}\n"
        in
        let m = Parser.parse_string text in
        check Alcotest.string "name" "m" m.Model.model_name);
  ]

let random_monolithic ~seed ~calls =
  Umlfront_casestudies.Random_models.monolithic ~seed ~calls

let mono_params =
  QCheck.make
    ~print:(fun (seed, calls) -> Printf.sprintf "seed=%d calls=%d" seed calls)
    QCheck.Gen.(pair (int_bound 10_000) (2 -- 10))

let traces uml =
  let out = Core.Flow.run ~strategy:Core.Flow.Infer_linear uml in
  (Exec.run ~rounds:4 (Sdf.of_model out.Core.Flow.caam)).Exec.traces

let partitioning_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"partitioning preserves behaviour on random models"
         ~count:30 mono_params
         (fun (seed, calls) ->
           let uml = random_monolithic ~seed ~calls in
           let r = Core.Partitioning.run uml in
           U.Validate.check r.Core.Partitioning.partitioned = []
           && traces uml = traces r.Core.Partitioning.partitioned));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"bounded partitioning respects the limit" ~count:30
         mono_params
         (fun (seed, calls) ->
           let r = Core.Partitioning.run ~threads:2 (random_monolithic ~seed ~calls) in
           List.length
             (List.sort_uniq compare (List.map snd r.Core.Partitioning.thread_of_call))
           <= 2));
  ]

let capture_property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"capture round-trips random flow outputs" ~count:20
         mono_params
         (fun (seed, calls) ->
           let uml = random_monolithic ~seed ~calls in
           let r = Core.Partitioning.run uml in
           let out =
             Core.Flow.run ~strategy:Core.Flow.Infer_linear r.Core.Partitioning.partitioned
           in
           let recovered = Core.Capture.run out.Core.Flow.caam in
           U.Validate.check recovered = []
           &&
           let out2 = Core.Flow.run ~strategy:Core.Flow.Use_deployment recovered in
           Caam.check out2.Core.Flow.caam = []
           && Caam.thread_names out2.Core.Flow.caam = Caam.thread_names out.Core.Flow.caam));
  ]

let granularity_tests =
  [
    test "edge-free graph is infinitely coarse" (fun () ->
        let g = G.of_lists ~nodes:[ ("a", 1.0); ("b", 2.0) ] ~edges:[] in
        check Alcotest.bool "inf" true (C.granularity g = infinity));
    test "hand-computed grain" (fun () ->
        (* a(4) -2-> b(1): grain at a = 4/2, at b = min(4,1)/2 ... both
           consider adjacent computation; minimum is 1/2. *)
        let g = G.of_lists ~nodes:[ ("a", 4.0); ("b", 1.0) ] ~edges:[ ("a", "b", 2.0) ] in
        check (Alcotest.float 1e-9) "0.5" 0.5 (C.granularity g));
    test "scaling communication scales grain inversely" (fun () ->
        let mk ccr = Gen.layered ~seed:11 ~layers:4 ~width:4 ~edge_probability:0.5 ~ccr () in
        let coarse = C.granularity (mk 0.1) in
        let fine = C.granularity (mk 10.0) in
        check Alcotest.bool "coarse > fine" true (coarse > fine));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"granularity positive on generated graphs" ~count:50
         (QCheck.make QCheck.Gen.(int_bound 1000))
         (fun seed ->
           let g = Gen.layered ~seed ~layers:4 ~width:4 ~edge_probability:0.5 ~ccr:1.0 () in
           C.granularity g > 0.0));
  ]

let layout_edge_tests =
  [
    test "position parse failure yields None" (fun () ->
        let sys =
          Umlfront_simulink.System.add_block
            ~params:[ ("Position", Umlfront_simulink.Block.P_string "garbage") ]
            (Umlfront_simulink.System.empty "s") Umlfront_simulink.Block.Gain "g"
        in
        let b = Umlfront_simulink.System.find_block_exn sys "g" in
        check Alcotest.bool "none" true (Umlfront_simulink.Layout.position b = None));
    test "loop breaker refuses a hopeless model politely" (fun () ->
        (* max_iterations 0 forces the failure path on a cyclic model. *)
        let module S = Umlfront_simulink.System in
        let module B = Umlfront_simulink.Block in
        let sys = S.add_block (S.empty "m") B.Gain "g1" in
        let sys = S.add_block sys B.Gain "g2" in
        let sys = S.add_line sys ~src:{ S.block = "g1"; S.port = 1 } ~dst:{ S.block = "g2"; S.port = 1 } in
        let sys = S.add_line sys ~src:{ S.block = "g2"; S.port = 1 } ~dst:{ S.block = "g1"; S.port = 1 } in
        let m = Model.make ~name:"m" sys in
        match Core.Loop_breaker.run ~max_iterations:0 m with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected Failure");
  ]

(* Differential testing: the generated pthread C must reproduce the
   OCaml executor sample-for-sample on random models. *)
let differential_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated C matches the executor on random models"
         ~count:8
         (QCheck.make
            ~print:(fun (seed, threads, extra) ->
              Printf.sprintf "seed=%d threads=%d extra=%d" seed threads extra)
            QCheck.Gen.(triple (int_bound 5_000) (2 -- 6) (0 -- 4)))
         (fun (seed, threads, extra) ->
           let uml = Test_integration.random_uml ~seed ~threads ~extra_edges:extra in
           let out = Core.Flow.run ~strategy:Core.Flow.Infer_linear uml in
           let caam = out.Core.Flow.caam in
           let dir = Filename.temp_file "umlfront_diffc" "" in
           Sys.remove dir;
           Sys.mkdir dir 0o755;
           List.iter
             (fun (name, content) ->
               let oc = open_out (Filename.concat dir name) in
               output_string oc content;
               close_out oc)
             (Umlfront_codegen.Gen_threads.generate ~rounds:5 caam)
               .Umlfront_codegen.Gen_threads.files;
           let bin = Filename.concat dir "model" in
           let compiled =
             Sys.command
               (Printf.sprintf
                  "gcc -pthread -o %s %s/model.c %s/sfunctions.c %s/fifo.c -lm 2>/dev/null"
                  bin dir dir dir)
             = 0
           in
           compiled
           &&
           let ic = Unix.open_process_in (bin ^ " 2>/dev/null") in
           let lines = ref [] in
           (try
              while true do
                lines := input_line ic :: !lines
              done
            with End_of_file -> ());
           ignore (Unix.close_process_in ic);
           let lines = List.rev !lines in
           let reference =
             (Exec.run ~rounds:5 (Sdf.of_model caam)).Exec.traces
           in
           let samples = snd (List.hd reference) in
           List.length lines = 5
           && List.for_all2
                (fun line expected ->
                  match String.split_on_char ' ' line with
                  | [ _; _; v ] -> Float.abs (float_of_string v -. expected) < 1e-6
                  | _ -> false)
                lines (Array.to_list samples)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"KPN reproduces full executor traces on random models"
         ~count:10
         (QCheck.make
            ~print:(fun (seed, threads) -> Printf.sprintf "seed=%d threads=%d" seed threads)
            QCheck.Gen.(pair (int_bound 5_000) (2 -- 6)))
         (fun (seed, threads) ->
           let uml = Test_integration.random_uml ~seed ~threads ~extra_edges:2 in
           let out = Core.Flow.run ~strategy:Core.Flow.Infer_linear uml in
           let sdf = Sdf.of_model out.Core.Flow.caam in
           let rounds = 4 in
           let reference = (Exec.run ~rounds sdf).Exec.traces in
           let kpn = Umlfront_dataflow.Kpn.run (Umlfront_dataflow.Kpn.of_sdf ~rounds sdf) in
           (* the KPN sink result is the last sample per output port *)
           List.for_all
             (fun (port, samples) ->
               match List.assoc_opt port kpn.Umlfront_dataflow.Kpn.results with
               | Some v -> Float.abs (v -. samples.(rounds - 1)) < 1e-9
               | None -> false)
             reference));
  ]

let suite =
  [
    ("robustness:fuzz", fuzz_tests);
    ("robustness:differential", differential_tests);
    ("robustness:partitioning", partitioning_property_tests);
    ("robustness:capture", capture_property_tests);
    ("robustness:granularity", granularity_tests);
    ("robustness:edges", layout_edge_tests);
  ]
