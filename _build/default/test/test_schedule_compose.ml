(* Bounded-processor list scheduling and FSM parallel composition. *)

module G = Umlfront_taskgraph.Graph
module Algo = Umlfront_taskgraph.Algo
module C = Umlfront_taskgraph.Clustering
module Lc = Umlfront_taskgraph.Linear_clustering
module Schedule = Umlfront_taskgraph.Schedule
module Gen = Umlfront_taskgraph.Generator
module F = Umlfront_fsm.Fsm
module Compose = Umlfront_fsm.Compose

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let diamond () =
  G.of_lists
    ~nodes:[ ("a", 2.0); ("b", 3.0); ("c", 1.0); ("d", 2.0) ]
    ~edges:[ ("a", "b", 4.0); ("a", "c", 1.0); ("b", "d", 4.0); ("c", "d", 1.0) ]

let legal g (s : Schedule.t) =
  (* dependencies respected, processors exclusive, all tasks placed *)
  let finish task =
    (List.find (fun (p : Schedule.placement) -> p.Schedule.task = task) s.Schedule.placements)
      .Schedule.finish
  in
  List.length s.Schedule.placements = G.node_count g
  && List.for_all
       (fun (p : Schedule.placement) ->
         List.for_all
           (fun pred -> p.Schedule.start +. 1e-9 >= finish pred)
           (G.preds g p.Schedule.task))
       s.Schedule.placements
  &&
  let by_proc p =
    List.filter (fun (pl : Schedule.placement) -> pl.Schedule.processor = p) s.Schedule.placements
    |> List.sort (fun a b -> Float.compare a.Schedule.start b.Schedule.start)
  in
  let rec no_overlap = function
    | a :: (b :: _ as rest) ->
        a.Schedule.finish <= b.Schedule.start +. 1e-9 && no_overlap rest
    | [ _ ] | [] -> true
  in
  List.for_all (fun p -> no_overlap (by_proc p)) [ 0; 1; 2; 3 ]

let schedule_tests =
  [
    test "hlfet on one processor equals sequential time" (fun () ->
        let g = diamond () in
        let s = Schedule.hlfet ~processors:1 g in
        check (Alcotest.float 1e-9) "makespan" (C.sequential_time g) s.Schedule.makespan);
    test "hlfet schedule is legal" (fun () ->
        let g = diamond () in
        check Alcotest.bool "legal" true (legal g (Schedule.hlfet ~processors:2 g)));
    test "more processors never hurt hlfet on the diamond" (fun () ->
        let g = diamond () in
        let m1 = (Schedule.hlfet ~processors:1 g).Schedule.makespan in
        let m2 = (Schedule.hlfet ~processors:2 g).Schedule.makespan in
        check Alcotest.bool "m2 <= m1" true (m2 <= m1 +. 1e-9));
    test "cyclic graph rejected" (fun () ->
        let g =
          G.of_lists ~nodes:[ ("x", 1.0); ("y", 1.0) ]
            ~edges:[ ("x", "y", 1.0); ("y", "x", 1.0) ]
        in
        match Schedule.hlfet ~processors:2 g with
        | exception Algo.Cycle _ -> ()
        | _ -> Alcotest.fail "expected Cycle");
    test "zero processors rejected" (fun () ->
        match Schedule.hlfet ~processors:0 (diamond ()) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "of_clustering folds clusters to the platform" (fun () ->
        let g = Gen.layered ~seed:5 ~layers:5 ~width:5 ~edge_probability:0.4 ~ccr:1.0 () in
        let s = Schedule.of_clustering ~processors:3 g (Lc.run g) in
        let procs =
          List.sort_uniq compare
            (List.map (fun (p : Schedule.placement) -> p.Schedule.processor) s.Schedule.placements)
        in
        check Alcotest.bool "<= 3 processors" true (List.length procs <= 3));
    test "to_clustering is a partition" (fun () ->
        let g = diamond () in
        let s = Schedule.hlfet ~processors:2 g in
        check Alcotest.bool "partition" true (C.is_partition_of g (Schedule.to_clustering s)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hlfet schedules random DAGs legally" ~count:50
         (QCheck.make QCheck.Gen.(triple (int_bound 500) (2 -- 5) (1 -- 4)))
         (fun (seed, layers, processors) ->
           let g =
             Gen.layered ~seed ~layers ~width:4 ~edge_probability:0.5 ~ccr:1.0 ()
           in
           legal g (Schedule.hlfet ~processors g)));
  ]

let tr ?(actions = []) src event dst =
  { F.t_src = src; t_event = event; t_guard = None; t_actions = actions; t_dst = dst }

let light =
  F.make ~name:"light" ~initial:"off" ~states:[ "off"; "on" ]
    [ tr "off" "power" "on" ~actions:[ "lamp_on" ];
      tr "on" "power" "off" ~actions:[ "lamp_off" ] ]

let fan =
  F.make ~name:"fan" ~initial:"still" ~states:[ "still"; "spin" ]
    [ tr "still" "power" "spin" ~actions:[ "fan_on" ];
      tr "spin" "power" "still" ~actions:[ "fan_off" ];
      tr "spin" "boost" "spin" ~actions:[ "fan_fast" ] ]

let compose_tests =
  [
    test "shared events move both components" (fun () ->
        let p = Compose.product light fan in
        match F.step p ~state:"off|still" ~event:"power" with
        | Some s ->
            check Alcotest.string "state" "on|spin" s.F.after;
            check Alcotest.(list string) "actions" [ "lamp_on"; "fan_on" ] s.F.actions
        | None -> Alcotest.fail "expected step");
    test "private events move one component" (fun () ->
        let p = Compose.product light fan in
        let after_power = F.final_state p [ "power" ] in
        match F.step p ~state:after_power ~event:"boost" with
        | Some s ->
            check Alcotest.string "state" "on|spin" s.F.after;
            check Alcotest.(list string) "actions" [ "fan_fast" ] s.F.actions
        | None -> Alcotest.fail "expected step");
    test "product is deterministic and reachable-only" (fun () ->
        let p = Compose.product light fan in
        check Alcotest.bool "det" true (F.is_deterministic p);
        (* off|spin and on|still are unreachable under shared power *)
        check Alcotest.int "states" 2 (List.length p.F.states));
    test "product behaviour equals componentwise simulation" (fun () ->
        let p = Compose.product light fan in
        let traces =
          [ [ "power" ]; [ "power"; "boost"; "power" ]; [ "boost"; "power"; "power" ] ]
        in
        List.iter
          (fun trace ->
            let expected =
              let s1 = ref light.F.initial and s2 = ref fan.F.initial in
              List.concat_map
                (fun e ->
                  let a1 =
                    match F.step light ~state:!s1 ~event:e with
                    | Some st ->
                        s1 := st.F.after;
                        st.F.actions
                    | None -> []
                  in
                  let a2 =
                    match F.step fan ~state:!s2 ~event:e with
                    | Some st ->
                        s2 := st.F.after;
                        st.F.actions
                    | None -> []
                  in
                  a1 @ a2)
                trace
            in
            let got = List.concat_map (fun s -> s.F.actions) (F.run p trace) in
            check Alcotest.(list string) "actions" expected got)
          traces);
    test "guarded machines rejected" (fun () ->
        let guarded =
          F.make ~name:"g" ~initial:"a" ~states:[ "a" ]
            [ { F.t_src = "a"; t_event = "e"; t_guard = Some "x"; t_actions = []; t_dst = "a" } ]
        in
        match Compose.product light guarded with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "product_list folds left" (fun () ->
        let third =
          F.make ~name:"bell" ~initial:"quiet" ~states:[ "quiet" ]
            [ tr "quiet" "power" "quiet" ~actions:[ "ding" ] ]
        in
        let p = Compose.product_list ~name:"room" [ light; fan; third ] in
        check Alcotest.string "name" "room" p.F.fsm_name;
        match F.step p ~state:p.F.initial ~event:"power" with
        | Some s ->
            check Alcotest.(list string) "all actions" [ "lamp_on"; "fan_on"; "ding" ]
              s.F.actions
        | None -> Alcotest.fail "expected step");
    test "finals are the intersection" (fun () ->
        let a =
          F.make ~name:"a" ~initial:"s" ~states:[ "s"; "fa" ] ~finals:[ "fa" ]
            [ tr "s" "go" "fa" ]
        in
        let b =
          F.make ~name:"b" ~initial:"t" ~states:[ "t"; "fb" ] ~finals:[ "fb" ]
            [ tr "t" "go" "fb" ]
        in
        let p = Compose.product a b in
        check Alcotest.(list string) "finals" [ "fa|fb" ] p.F.finals);
    test "product with minimization stays equivalent" (fun () ->
        let p = Compose.product light fan in
        let m = Umlfront_fsm.Minimize.run p in
        check Alcotest.bool "equal" true
          (F.simulate_equal p m [ [ "power" ]; [ "power"; "boost" ]; [] ]));
  ]

let suite =
  [ ("schedule:hlfet", schedule_tests); ("fsm:compose", compose_tests) ]
