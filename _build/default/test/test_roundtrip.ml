(* Automatic partitioning (§6) and the reverse CAAM→UML capture (§2's
   GeneralStore comparison), including behavioural round-trips through
   the SDF executor. *)

module U = Umlfront_uml
module Core = Umlfront_core
module Model = Umlfront_simulink.Model
module Caam = Umlfront_simulink.Caam
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module G = Umlfront_taskgraph.Graph
module Cs = Umlfront_casestudies

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let arg = U.Sequence.arg
let f32 = U.Datatype.D_float

(* A single-threaded pipeline with two parallel branches:
   in -> prep -> {left, right} -> merge -> out. *)
let monolithic () =
  let b = U.Builder.create "mono" in
  U.Builder.thread b "T";
  U.Builder.io_device b "IO";
  U.Builder.passive_object b ~cls:"Stage" "stage";
  U.Builder.call b ~from:"T" ~target:"IO" "getIn" ~result:(arg "x" f32);
  U.Builder.call b ~from:"T" ~target:"stage" "prep" ~args:[ arg "x" f32 ]
    ~result:(arg "p" f32);
  U.Builder.call b ~from:"T" ~target:"stage" "left" ~args:[ arg "p" f32 ]
    ~result:(arg "a" f32);
  U.Builder.call b ~from:"T" ~target:"stage" "right" ~args:[ arg "p" f32 ]
    ~result:(arg "bb" f32);
  U.Builder.call b ~from:"T" ~target:"stage" "merge"
    ~args:[ arg "a" f32; arg "bb" f32 ]
    ~result:(arg "y" f32);
  U.Builder.call b ~from:"T" ~target:"IO" "setOut" ~args:[ arg "y" f32 ];
  U.Builder.finish b

let traces_of uml strategy =
  let out = Core.Flow.run ~strategy uml in
  let sdf = Sdf.of_model out.Core.Flow.caam in
  (out, (Exec.run ~rounds:6 sdf).Exec.traces)

let partitioning_tests =
  [
    test "call graph follows token flow" (fun () ->
        let g = Core.Partitioning.call_graph (monolithic ()) in
        check Alcotest.int "4 functional calls" 4 (G.node_count g);
        check Alcotest.int "4 data edges" 4 (G.edge_count g));
    test "multi-thread model rejected" (fun () ->
        match Core.Partitioning.run (Cs.Didactic.model ()) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "partition covers every functional call" (fun () ->
        let r = Core.Partitioning.run (monolithic ()) in
        check Alcotest.int "4 calls homed" 4 (List.length r.Core.Partitioning.thread_of_call));
    test "parallel branches split across threads" (fun () ->
        let r = Core.Partitioning.run (monolithic ()) in
        let threads =
          List.sort_uniq compare (List.map snd r.Core.Partitioning.thread_of_call)
        in
        check Alcotest.bool ">= 2 threads" true (List.length threads >= 2);
        check Alcotest.bool "cuts recorded" true (r.Core.Partitioning.cut_tokens <> []));
    test "bounded partitioning respects the limit" (fun () ->
        let r = Core.Partitioning.run ~threads:2 (monolithic ()) in
        let threads =
          List.sort_uniq compare (List.map snd r.Core.Partitioning.thread_of_call)
        in
        check Alcotest.bool "<= 2" true (List.length threads <= 2));
    test "partitioned model is well-formed and flows" (fun () ->
        let r = Core.Partitioning.run (monolithic ()) in
        check Alcotest.int "valid" 0
          (List.length (U.Validate.check r.Core.Partitioning.partitioned));
        let out = Core.Flow.run ~strategy:Core.Flow.Infer_linear r.Core.Partitioning.partitioned in
        check Alcotest.(list string) "caam ok" [] (Caam.check out.Core.Flow.caam));
    test "partitioning preserves behaviour" (fun () ->
        let uml = monolithic () in
        let r = Core.Partitioning.run uml in
        let _, reference = traces_of uml Core.Flow.Infer_linear in
        let _, partitioned =
          traces_of r.Core.Partitioning.partitioned Core.Flow.Infer_linear
        in
        check Alcotest.int "same port count" (List.length reference)
          (List.length partitioned);
        List.iter
          (fun (port, samples) ->
            match List.assoc_opt port partitioned with
            | Some samples' ->
                check Alcotest.(array (float 1e-9)) port samples samples'
            | None -> Alcotest.fail ("missing port " ^ port))
          reference);
  ]

let capture_roundtrip uml strategy =
  let out = Core.Flow.run ~strategy uml in
  let recovered = Core.Capture.run out.Core.Flow.caam in
  (out, recovered)

let capture_tests =
  [
    test "captured model is well-formed" (fun () ->
        let _, recovered = capture_roundtrip (Cs.Didactic.model ()) Core.Flow.Use_deployment in
        check Alcotest.int "valid" 0 (List.length (U.Validate.check recovered)));
    test "deployment recovered" (fun () ->
        let _, recovered = capture_roundtrip (Cs.Didactic.model ()) Core.Flow.Use_deployment in
        match U.Model.deployment recovered with
        | Some d ->
            check Alcotest.(list string) "cpus" [ "CPU1"; "CPU2" ]
              (U.Deployment.node_names d);
            check Alcotest.(option string) "T3 placement" (Some "CPU2")
              (U.Deployment.node_of_thread d "T3")
        | None -> Alcotest.fail "deployment lost");
    test "re-synthesis reproduces the structure" (fun () ->
        let out, recovered = capture_roundtrip (Cs.Didactic.model ()) Core.Flow.Use_deployment in
        let out2 = Core.Flow.run ~strategy:Core.Flow.Use_deployment recovered in
        check Alcotest.int "cpu count"
          (List.length (Caam.cpus out.Core.Flow.caam))
          (List.length (Caam.cpus out2.Core.Flow.caam));
        check Alcotest.(list (pair string string)) "thread placement"
          (Caam.thread_names out.Core.Flow.caam)
          (Caam.thread_names out2.Core.Flow.caam);
        check Alcotest.int "inter channels" out.Core.Flow.inter_channels
          out2.Core.Flow.inter_channels;
        check Alcotest.int "intra channels" out.Core.Flow.intra_channels
          out2.Core.Flow.intra_channels);
    test "no extra temporal barriers on recapture (crane)" (fun () ->
        let out, recovered = capture_roundtrip (Cs.Crane_system.model ()) Core.Flow.Use_deployment in
        check Alcotest.int "original inserted one" 1 out.Core.Flow.delays_inserted;
        let out2 = Core.Flow.run ~strategy:Core.Flow.Use_deployment recovered in
        check Alcotest.int "captured delay suffices" 0 out2.Core.Flow.delays_inserted);
    test "behavioural round-trip (didactic)" (fun () ->
        let out, recovered = capture_roundtrip (Cs.Didactic.model ()) Core.Flow.Use_deployment in
        let reference = (Exec.run ~rounds:6 (Sdf.of_model out.Core.Flow.caam)).Exec.traces in
        let out2 = Core.Flow.run ~strategy:Core.Flow.Use_deployment recovered in
        let recovered_traces =
          (Exec.run ~rounds:6 (Sdf.of_model out2.Core.Flow.caam)).Exec.traces
        in
        List.iter
          (fun (port, samples) ->
            match List.assoc_opt port recovered_traces with
            | Some samples' -> check Alcotest.(array (float 1e-9)) port samples samples'
            | None -> Alcotest.fail ("missing port " ^ port))
          reference);
    test "behavioural round-trip (crane, with feedback)" (fun () ->
        let out, recovered = capture_roundtrip (Cs.Crane_system.model ()) Core.Flow.Use_deployment in
        let reference = (Exec.run ~rounds:8 (Sdf.of_model out.Core.Flow.caam)).Exec.traces in
        let out2 = Core.Flow.run ~strategy:Core.Flow.Use_deployment recovered in
        let recovered_traces =
          (Exec.run ~rounds:8 (Sdf.of_model out2.Core.Flow.caam)).Exec.traces
        in
        List.iter
          (fun (port, samples) ->
            match List.assoc_opt port recovered_traces with
            | Some samples' -> check Alcotest.(array (float 1e-9)) port samples samples'
            | None -> Alcotest.fail ("missing port " ^ port))
          reference);
    test "non-CAAM model rejected" (fun () ->
        let plain = Model.make ~name:"x" (Umlfront_simulink.System.empty "x") in
        match Core.Capture.run plain with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let pipeline_tests =
  [
    test "partition then capture then flow is stable" (fun () ->
        let r = Core.Partitioning.run (monolithic ()) in
        let out = Core.Flow.run ~strategy:Core.Flow.Infer_linear r.Core.Partitioning.partitioned in
        let recovered = Core.Capture.run out.Core.Flow.caam in
        check Alcotest.int "valid" 0 (List.length (U.Validate.check recovered));
        let out2 = Core.Flow.run ~strategy:Core.Flow.Use_deployment recovered in
        check Alcotest.(list string) "caam ok" [] (Caam.check out2.Core.Flow.caam));
  ]

let suite =
  [
    ("roundtrip:partitioning", partitioning_tests);
    ("roundtrip:capture", capture_tests);
    ("roundtrip:pipeline", pipeline_tests);
  ]
