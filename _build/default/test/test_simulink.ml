module B = Umlfront_simulink.Block
module S = Umlfront_simulink.System
module Model = Umlfront_simulink.Model
module Library = Umlfront_simulink.Library
module Caam = Umlfront_simulink.Caam
module Writer = Umlfront_simulink.Mdl_writer
module Parser = Umlfront_simulink.Mdl_parser

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let block_tests =
  [
    test "block type round trip" (fun () ->
        List.iter
          (fun t -> check Alcotest.bool (B.to_string t) true (B.of_string (B.to_string t) = t))
          [
            B.Inport; B.Outport; B.Subsystem; B.S_function; B.Product; B.Sum; B.Gain;
            B.Constant; B.Unit_delay; B.Mux; B.Demux; B.Saturation; B.Switch;
            B.Terminator; B.Ground; B.Channel;
          ]);
    test "unknown block type rejected" (fun () ->
        match B.of_string "FluxCapacitor" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "default ports sensible" (fun () ->
        check Alcotest.(pair int int) "product" (2, 1) (B.default_ports B.Product);
        check Alcotest.(pair int int) "inport" (0, 1) (B.default_ports B.Inport);
        check Alcotest.(pair int int) "switch" (3, 1) (B.default_ports B.Switch));
  ]

(* A two-level model used by several suites: In -> sub(gain) -> Out. *)
let two_level () =
  let inner = S.empty "sub" in
  let inner = S.add_block ~params:[ ("Port", B.P_int 1) ] inner B.Inport "In1" in
  let inner = S.add_block ~params:[ ("Gain", B.P_float 2.0) ] inner B.Gain "g" in
  let inner = S.add_block ~params:[ ("Port", B.P_int 1) ] inner B.Outport "Out1" in
  let inner =
    S.add_line inner ~src:{ S.block = "In1"; S.port = 1 } ~dst:{ S.block = "g"; S.port = 1 }
  in
  let inner =
    S.add_line inner ~src:{ S.block = "g"; S.port = 1 } ~dst:{ S.block = "Out1"; S.port = 1 }
  in
  let root = S.empty "top" in
  let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Inport "src" in
  let root = S.add_block ~system:inner root B.Subsystem "sub" in
  let root = S.add_block ~params:[ ("Port", B.P_int 1) ] root B.Outport "dst" in
  let root =
    S.add_line root ~src:{ S.block = "src"; S.port = 1 } ~dst:{ S.block = "sub"; S.port = 1 }
  in
  let root =
    S.add_line root ~src:{ S.block = "sub"; S.port = 1 } ~dst:{ S.block = "dst"; S.port = 1 }
  in
  Model.make ~name:"two_level" root

let system_tests =
  [
    test "duplicate block name rejected" (fun () ->
        let sys = S.add_block (S.empty "s") B.Gain "g" in
        match S.add_block sys B.Sum "g" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "system payload only for subsystems" (fun () ->
        match S.add_block ~system:(S.empty "x") (S.empty "s") B.Gain "g" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "line to unknown block rejected" (fun () ->
        let sys = S.add_block (S.empty "s") B.Gain "g" in
        match
          S.add_line sys ~src:{ S.block = "g"; S.port = 1 } ~dst:{ S.block = "h"; S.port = 1 }
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "double driver rejected" (fun () ->
        let sys = S.add_block (S.empty "s") B.Constant "c1" in
        let sys = S.add_block sys B.Constant "c2" in
        let sys = S.add_block sys B.Gain "g" in
        let sys =
          S.add_line sys ~src:{ S.block = "c1"; S.port = 1 } ~dst:{ S.block = "g"; S.port = 1 }
        in
        match
          S.add_line sys ~src:{ S.block = "c2"; S.port = 1 } ~dst:{ S.block = "g"; S.port = 1 }
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "subsystem ports derived from children" (fun () ->
        let m = two_level () in
        let sub = S.find_block_exn m.Model.root "sub" in
        check Alcotest.(pair int int) "ports" (1, 1) (S.port_counts sub));
    test "Inputs parameter widens blocks" (fun () ->
        let sys = S.add_block ~params:[ ("Inputs", B.P_int 5) ] (S.empty "s") B.Product "p" in
        check Alcotest.(pair int int) "ports" (5, 1)
          (S.port_counts (S.find_block_exn sys "p")));
    test "drivers and consumers" (fun () ->
        let m = two_level () in
        check Alcotest.int "sub drivers" 1 (List.length (S.drivers m.Model.root "sub"));
        check Alcotest.int "src consumers" 1
          (List.length (S.consumers m.Model.root "src" 1)));
    test "total counts recurse" (fun () ->
        let m = two_level () in
        check Alcotest.int "blocks" 6 (S.total_blocks m.Model.root);
        check Alcotest.int "lines" 4 (S.total_lines m.Model.root));
    test "validate accepts the sample" (fun () ->
        check Alcotest.int "clean" 0 (List.length (Model.validate (two_level ()))));
    test "validate flags port out of range" (fun () ->
        let sys = S.add_block (S.empty "s") B.Gain "g" in
        let sys = S.add_block sys B.Gain "h" in
        let sys =
          S.add_line sys ~src:{ S.block = "g"; S.port = 7 } ~dst:{ S.block = "h"; S.port = 1 }
        in
        check Alcotest.bool "flagged" true (S.validate sys <> []));
    test "validate flags non-contiguous boundary ports" (fun () ->
        let sys = S.add_block ~params:[ ("Port", B.P_int 2) ] (S.empty "s") B.Inport "In2" in
        check Alcotest.bool "flagged" true (S.validate sys <> []));
    test "map_systems rebuilds bottom-up" (fun () ->
        let m = two_level () in
        let seen = ref [] in
        let _ =
          S.map_systems
            (fun path sys ->
              seen := String.concat "/" path :: !seen;
              sys)
            m.Model.root
        in
        (* children visited before parents *)
        check Alcotest.(list string) "order" [ ""; "sub" ] !seen);
    test "set_param replaces" (fun () ->
        let sys = S.add_block ~params:[ ("Gain", B.P_float 1.0) ] (S.empty "s") B.Gain "g" in
        let sys = S.set_param sys "g" "Gain" (B.P_float 3.0) in
        check Alcotest.bool "updated" true
          (S.param (S.find_block_exn sys "g") "Gain" = Some (B.P_float 3.0)));
  ]

let library_tests =
  [
    test "mult maps to Product" (fun () ->
        match Library.lookup "mult" with
        | Some e -> check Alcotest.bool "product" true (e.Library.block_type = B.Product)
        | None -> Alcotest.fail "not found");
    test "lookup is case-insensitive" (fun () ->
        check Alcotest.bool "MULT" true (Library.lookup "MULT" <> None));
    test "unknown method not a library block" (fun () ->
        check Alcotest.bool "calc" false (Library.is_library_method "calc"));
    test "sub carries +- signs" (fun () ->
        match Library.lookup "sub" with
        | Some e ->
            check Alcotest.bool "signs" true
              (List.assoc_opt "Inputs" e.Library.params = Some (B.P_string "+-"))
        | None -> Alcotest.fail "not found");
  ]

let mdl_tests =
  [
    test "writer emits parsable text" (fun () ->
        let m = two_level () in
        let m' = Parser.parse_string (Writer.to_string m) in
        check Alcotest.string "name" m.Model.model_name m'.Model.model_name;
        check Alcotest.(list (pair string int)) "stats" (Model.stats m) (Model.stats m'));
    test "round trip reaches a textual fixpoint" (fun () ->
        let m = two_level () in
        let once = Writer.to_string (Parser.parse_string (Writer.to_string m)) in
        let twice = Writer.to_string (Parser.parse_string once) in
        check Alcotest.string "fixpoint" once twice);
    test "round trip preserves lines" (fun () ->
        let m = two_level () in
        let m' = Parser.parse_string (Writer.to_string m) in
        check Alcotest.int "root lines" 2 (List.length (S.lines m'.Model.root)));
    test "round trip preserves solver and stop time" (fun () ->
        let m = Model.make ~solver:"ode45" ~stop_time:3.5 ~name:"m" (S.empty "m") in
        let m' = Parser.parse_string (Writer.to_string m) in
        check Alcotest.string "solver" "ode45" m'.Model.solver;
        check (Alcotest.float 1e-9) "stop" 3.5 m'.Model.stop_time);
    test "quotes in names survive" (fun () ->
        let sys = S.add_block (S.empty "s") B.Gain "weird \"name\"" in
        let m = Model.make ~name:"q" sys in
        let m' = Parser.parse_string (Writer.to_string m) in
        check Alcotest.bool "found" true (S.find_block m'.Model.root "weird \"name\"" <> None));
    test "parse tree exposes sections" (fun () ->
        let tree = Parser.parse_tree (Writer.to_string (two_level ())) in
        check Alcotest.string "root" "Model" tree.Parser.section;
        check Alcotest.bool "has system" true
          (List.exists (fun c -> c.Parser.section = "System") tree.Parser.children));
    test "unterminated section rejected" (fun () ->
        match Parser.parse_string "Model {\n  Name \"x\"\n" with
        | exception Parser.Error _ -> ()
        | _ -> Alcotest.fail "expected Error");
    test "garbage rejected" (fun () ->
        match Parser.parse_string "}{" with
        | exception Parser.Error _ -> ()
        | _ -> Alcotest.fail "expected Error");
  ]

let caam_model () =
  (* Hand-built minimal CAAM: one CPU, two threads, one SWFIFO. *)
  let thread name blocks_fn =
    let sys = S.empty name in
    blocks_fn sys
  in
  let t1 =
    thread "T1" (fun sys ->
        let sys = S.add_block ~params:[ ("Value", B.P_float 1.0) ] sys B.Constant "c" in
        let sys = S.add_block ~params:[ ("Port", B.P_int 1) ] sys B.Outport "Out1" in
        S.add_line sys ~src:{ S.block = "c"; S.port = 1 } ~dst:{ S.block = "Out1"; S.port = 1 })
  in
  let t2 =
    thread "T2" (fun sys ->
        let sys = S.add_block ~params:[ ("Port", B.P_int 1) ] sys B.Inport "In1" in
        let sys = S.add_block sys B.Terminator "sink" in
        S.add_line sys ~src:{ S.block = "In1"; S.port = 1 } ~dst:{ S.block = "sink"; S.port = 1 })
  in
  let cpu = S.empty "CPU1" in
  let cpu = S.add_block ~system:t1 cpu B.Subsystem "T1" in
  let cpu = Caam.mark cpu "T1" Caam.Thread in
  let cpu = S.add_block ~system:t2 cpu B.Subsystem "T2" in
  let cpu = Caam.mark cpu "T2" Caam.Thread in
  let cpu =
    S.add_block
      ~params:
        [ (Caam.protocol_param, B.P_string "SWFIFO"); (Caam.role_param, B.P_string "comm") ]
      cpu B.Channel "ch1"
  in
  let cpu =
    S.add_line cpu ~src:{ S.block = "T1"; S.port = 1 } ~dst:{ S.block = "ch1"; S.port = 1 }
  in
  let cpu =
    S.add_line cpu ~src:{ S.block = "ch1"; S.port = 1 } ~dst:{ S.block = "T2"; S.port = 1 }
  in
  let top = S.empty "m" in
  let top = S.add_block ~system:cpu top B.Subsystem "CPU1" in
  let top = Caam.mark top "CPU1" Caam.Cpu in
  Model.make ~name:"m" top

let caam_tests =
  [
    test "roles readable" (fun () ->
        let m = caam_model () in
        check Alcotest.int "one cpu" 1 (List.length (Caam.cpus m));
        check Alcotest.int "two threads" 2
          (List.length (Caam.threads_of_cpu (List.hd (Caam.cpus m)))));
    test "thread_names pairs" (fun () ->
        check Alcotest.(list (pair string string)) "pairs"
          [ ("T1", "CPU1"); ("T2", "CPU1") ]
          (Caam.thread_names (caam_model ())));
    test "channels found with protocol" (fun () ->
        match Caam.channels (caam_model ()) with
        | [ (path, ch) ] ->
            check Alcotest.(list string) "path" [ "CPU1" ] path;
            check Alcotest.(option string) "protocol" (Some "SWFIFO") (Caam.protocol ch)
        | _ -> Alcotest.fail "expected one channel");
    test "classification by nesting" (fun () ->
        check Alcotest.bool "top inter" true (Caam.classify_channel ~path:[] = Caam.Inter_cpu);
        check Alcotest.bool "nested intra" true
          (Caam.classify_channel ~path:[ "CPU1" ] = Caam.Intra_cpu));
    test "check passes on good model" (fun () ->
        check Alcotest.(list string) "clean" [] (Caam.check (caam_model ())));
    test "check flags wrong protocol" (fun () ->
        let m = caam_model () in
        let root =
          S.map_systems
            (fun path sys ->
              if path = [ "CPU1" ] then
                S.set_param sys "ch1" Caam.protocol_param (B.P_string "GFIFO")
              else sys)
            m.Model.root
        in
        check Alcotest.bool "flagged" true (Caam.check (Model.make ~name:"m" root) <> []));
    test "check flags unmarked top subsystem" (fun () ->
        let top = S.add_block (S.empty "m") B.Subsystem "mystery" in
        check Alcotest.bool "flagged" true (Caam.check (Model.make ~name:"m" top) <> []));
  ]

module Diff = Umlfront_simulink.Model_diff

let diff_tests =
  [
    test "identical models are equivalent" (fun () ->
        check Alcotest.bool "eq" true (Diff.equivalent (two_level ()) (two_level ())));
    test "position differences are ignored by default" (fun () ->
        let m = two_level () in
        let laid = Umlfront_simulink.Layout.run m in
        check Alcotest.bool "eq" true (Diff.equivalent m laid);
        check Alcotest.bool "neq with empty ignore" false
          (Diff.equivalent ~ignore_params:[] m laid));
    test "added block and line reported with path" (fun () ->
        let m = two_level () in
        let root = S.add_block ~params:[ ("Gain", B.P_float 5.0) ] m.Model.root B.Gain "extra" in
        let m' = Model.make ~name:m.Model.model_name root in
        match Diff.diff m m' with
        | [ Diff.Block_added ([], "extra") ] -> ()
        | changes ->
            Alcotest.fail
              (Format.asprintf "unexpected: %a"
                 (Format.pp_print_list Diff.pp_change)
                 changes));
    test "param change reported" (fun () ->
        let m = two_level () in
        let root =
          S.map_systems
            (fun path sys ->
              if path = [ "sub" ] then S.set_param sys "g" "Gain" (B.P_float 3.0) else sys)
            m.Model.root
        in
        let m' = Model.make ~name:m.Model.model_name root in
        match Diff.diff m m' with
        | [ Diff.Param_changed ([ "sub" ], "g", "Gain", Some (B.P_float 2.0), Some (B.P_float 3.0)) ] -> ()
        | _ -> Alcotest.fail "expected one param change");
    test "nested removal reported per block" (fun () ->
        let m = two_level () in
        let root =
          { m.Model.root with S.sys_blocks =
              List.filter (fun (b : S.block) -> b.S.blk_name <> "sub") m.Model.root.S.sys_blocks;
            S.sys_lines = [] }
        in
        let m' = Model.make ~name:m.Model.model_name root in
        let removed =
          Diff.diff m m'
          |> List.filter (function Diff.Block_removed _ -> true | _ -> false)
        in
        check Alcotest.int "one top-level removal" 1 (List.length removed));
    test "line changes reported" (fun () ->
        let m = two_level () in
        let root =
          S.remove_line m.Model.root ~src:{ S.block = "src"; S.port = 1 }
            ~dst:{ S.block = "sub"; S.port = 1 }
        in
        let m' = Model.make ~name:m.Model.model_name root in
        match Diff.diff m m' with
        | [ Diff.Line_removed ([], _) ] -> ()
        | _ -> Alcotest.fail "expected one removed line");
  ]

let suite =
  [
    ("simulink:block", block_tests);
    ("simulink:system", system_tests);
    ("simulink:library", library_tests);
    ("simulink:mdl", mdl_tests);
    ("simulink:caam", caam_tests);
    ("simulink:diff", diff_tests);
  ]

(* shared with other test modules *)
let sample_two_level = two_level
let sample_caam = caam_model
