module F = Umlfront_fsm.Fsm
module Flatten = Umlfront_fsm.Flatten
module Minimize = Umlfront_fsm.Minimize
module Codegen_c = Umlfront_fsm.Codegen_c
module Dot = Umlfront_fsm.Dot
module Sc = Umlfront_uml.Statechart

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let tr ?guard ?(actions = []) src event dst =
  { F.t_src = src; t_event = event; t_guard = guard; t_actions = actions; t_dst = dst }

let toggle =
  F.make ~name:"toggle" ~initial:"off" ~states:[ "off"; "on" ]
    [ tr "off" "press" "on" ~actions:[ "light_on" ];
      tr "on" "press" "off" ~actions:[ "light_off" ] ]

let fsm_tests =
  [
    test "undeclared initial rejected" (fun () ->
        match F.make ~name:"x" ~initial:"ghost" ~states:[ "a" ] [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "undeclared transition endpoint rejected" (fun () ->
        match F.make ~name:"x" ~initial:"a" ~states:[ "a" ] [ tr "a" "e" "b" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "events sorted distinct" (fun () ->
        check Alcotest.(list string) "events" [ "press" ] (F.events toggle));
    test "deterministic detection" (fun () ->
        check Alcotest.bool "toggle det" true (F.is_deterministic toggle);
        let nondet =
          F.make ~name:"n" ~initial:"a" ~states:[ "a"; "b" ]
            [ tr "a" "e" "b"; tr "a" "e" "a" ]
        in
        check Alcotest.bool "nondet" false (F.is_deterministic nondet));
    test "guarded transitions do not break determinism check" (fun () ->
        let guarded =
          F.make ~name:"g" ~initial:"a" ~states:[ "a"; "b" ]
            [ tr ~guard:"x" "a" "e" "b"; tr "a" "e" "a" ]
        in
        check Alcotest.bool "det" true (F.is_deterministic guarded));
    test "step follows transition and emits actions" (fun () ->
        match F.step toggle ~state:"off" ~event:"press" with
        | Some s ->
            check Alcotest.string "after" "on" s.F.after;
            check Alcotest.(list string) "actions" [ "light_on" ] s.F.actions
        | None -> Alcotest.fail "expected a step");
    test "step on unhandled event is None" (fun () ->
        check Alcotest.bool "none" true (F.step toggle ~state:"off" ~event:"kick" = None));
    test "guard blocks transition" (fun () ->
        let m =
          F.make ~name:"g" ~initial:"a" ~states:[ "a"; "b" ]
            [ tr ~guard:"ok" "a" "e" "b" ]
        in
        check Alcotest.bool "blocked" true
          (F.step ~guard_eval:(fun _ -> false) m ~state:"a" ~event:"e" = None);
        check Alcotest.bool "allowed" true
          (F.step ~guard_eval:(fun _ -> true) m ~state:"a" ~event:"e" <> None));
    test "run skips unhandled events" (fun () ->
        let steps = F.run toggle [ "press"; "kick"; "press" ] in
        check Alcotest.int "two steps" 2 (List.length steps);
        check Alcotest.string "back to off" "off" (F.final_state toggle [ "press"; "kick"; "press" ]));
    test "reachability pruning" (fun () ->
        let m =
          F.make ~name:"p" ~initial:"a" ~states:[ "a"; "b"; "island" ]
            [ tr "a" "e" "b"; tr "island" "e" "a" ]
        in
        let pruned = F.prune_unreachable m in
        check Alcotest.(list string) "states" [ "a"; "b" ] pruned.F.states;
        check Alcotest.int "transitions" 1 (List.length pruned.F.transitions));
  ]

let minimize_tests =
  [
    test "merges behaviourally identical states" (fun () ->
        (* b and c both go to d on e with the same action. *)
        let m =
          F.make ~name:"m" ~initial:"a" ~states:[ "a"; "b"; "c"; "d" ]
            [
              tr "a" "x" "b" ~actions:[ "go" ];
              tr "a" "y" "c" ~actions:[ "go" ];
              tr "b" "e" "d" ~actions:[ "fin" ];
              tr "c" "e" "d" ~actions:[ "fin" ];
            ]
        in
        let minimized = Minimize.run m in
        check Alcotest.int "3 states" 3 (List.length minimized.F.states));
    test "does not merge states with different actions" (fun () ->
        let m =
          F.make ~name:"m" ~initial:"a" ~states:[ "a"; "b"; "c" ]
            [
              tr "a" "x" "b";
              tr "a" "y" "c";
              tr "b" "e" "a" ~actions:[ "p" ];
              tr "c" "e" "a" ~actions:[ "q" ];
            ]
        in
        check Alcotest.int "unchanged" 3 (List.length (Minimize.run m).F.states));
    test "respects finality" (fun () ->
        let m =
          F.make ~name:"m" ~initial:"a" ~states:[ "a"; "b" ] ~finals:[ "b" ]
            [ tr "a" "e" "b" ]
        in
        (* a and b differ in finality, so they cannot merge *)
        check Alcotest.int "2 classes" 2 (List.length (Minimize.equivalent_classes m)));
    test "minimization preserves behaviour (property)" (fun () ->
        let traces =
          [ []; [ "press" ]; [ "press"; "press" ]; [ "press"; "kick"; "press" ] ]
        in
        check Alcotest.bool "equal" true (F.simulate_equal toggle (Minimize.run toggle) traces));
  ]

(* Hierarchical chart:
   init -> idle; composite "active" with sub-states fast/slow.
   start: idle -> active (enters fast via the inner initial)
   stop: active -> idle (from any inner state)
   shift: fast -> slow *)
let hier_chart =
  Sc.make "machine"
    [
      Sc.state ~kind:Sc.Initial "init";
      Sc.state ~entry:"enter_idle" "idle";
      Sc.state ~entry:"enter_active" ~exit:"leave_active" "active"
        ~children:
          [
            Sc.state ~kind:Sc.Initial "a_init";
            Sc.state ~entry:"enter_fast" "fast";
            Sc.state ~entry:"enter_slow" ~exit:"leave_slow" "slow";
          ];
    ]
    [
      Sc.transition ~source:"init" ~target:"idle" ();
      Sc.transition ~source:"a_init" ~target:"fast" ();
      Sc.transition ~trigger:"start" ~effect:"spin_up" ~source:"idle" ~target:"active" ();
      Sc.transition ~trigger:"stop" ~source:"active" ~target:"idle" ();
      Sc.transition ~trigger:"shift" ~source:"fast" ~target:"slow" ();
    ]

let flatten_tests =
  [
    test "initial resolves to a leaf" (fun () ->
        let fsm = Flatten.run hier_chart in
        check Alcotest.string "initial" "idle" fsm.F.initial);
    test "leaf states only" (fun () ->
        let fsm = Flatten.run hier_chart in
        check Alcotest.(list string) "states" [ "fast"; "idle"; "slow" ] fsm.F.states);
    test "transition into composite targets its default entry" (fun () ->
        let fsm = Flatten.run hier_chart in
        match F.step fsm ~state:"idle" ~event:"start" with
        | Some s ->
            check Alcotest.string "fast" "fast" s.F.after;
            check Alcotest.(list string) "actions"
              [ "spin_up"; "enter_active"; "enter_fast" ]
              s.F.actions
        | None -> Alcotest.fail "expected step");
    test "transition out of composite replicated per leaf" (fun () ->
        let fsm = Flatten.run hier_chart in
        let stops =
          List.filter (fun (t : F.transition) -> t.F.t_event = "stop") fsm.F.transitions
        in
        check Alcotest.int "two" 2 (List.length stops));
    test "exit actions fire innermost first" (fun () ->
        let fsm = Flatten.run hier_chart in
        match F.step fsm ~state:"slow" ~event:"stop" with
        | Some s ->
            check Alcotest.(list string) "actions"
              [ "leave_slow"; "leave_active"; "enter_idle" ]
              s.F.actions
        | None -> Alcotest.fail "expected step");
    test "inner transition does not leave composite" (fun () ->
        let fsm = Flatten.run hier_chart in
        match F.step fsm ~state:"fast" ~event:"shift" with
        | Some s ->
            check Alcotest.string "slow" "slow" s.F.after;
            check Alcotest.(list string) "only inner entry" [ "enter_slow" ] s.F.actions
        | None -> Alcotest.fail "expected step");
    test "self transition exits and re-enters" (fun () ->
        let chart =
          Sc.make "s"
            [ Sc.state ~kind:Sc.Initial "i"; Sc.state ~entry:"in_a" ~exit:"out_a" "a" ]
            [
              Sc.transition ~source:"i" ~target:"a" ();
              Sc.transition ~trigger:"tick" ~source:"a" ~target:"a" ();
            ]
        in
        match F.step (Flatten.run chart) ~state:"a" ~event:"tick" with
        | Some s -> check Alcotest.(list string) "actions" [ "out_a"; "in_a" ] s.F.actions
        | None -> Alcotest.fail "expected step");
    test "duplicate state names rejected" (fun () ->
        let chart = Sc.make "d" [ Sc.state "a"; Sc.state "a" ] [] in
        match Flatten.run chart with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "final leaves become FSM finals" (fun () ->
        let chart =
          Sc.make "f"
            [ Sc.state ~kind:Sc.Initial "i"; Sc.state "a"; Sc.state ~kind:Sc.Final "done_" ]
            [
              Sc.transition ~source:"i" ~target:"a" ();
              Sc.transition ~trigger:"end" ~source:"a" ~target:"done_" ();
            ]
        in
        check Alcotest.(list string) "finals" [ "done_" ] (Flatten.run chart).F.finals);
  ]

(* Media player: composite "playing" remembers its track across a
   pause when marked with shallow history. *)
let player ~history =
  let history = if history then Sc.Shallow else Sc.No_history in
  Sc.make "player"
    [
      Sc.state ~kind:Sc.Initial "init";
      Sc.state ~entry:"mute" "paused";
      Sc.state ~entry:"unmute" ~history "playing"
        ~children:
          [
            Sc.state ~kind:Sc.Initial "p_init";
            Sc.state ~entry:"playA" "trackA";
            Sc.state ~entry:"playB" "trackB";
          ];
    ]
    [
      Sc.transition ~source:"init" ~target:"playing" ();
      Sc.transition ~source:"p_init" ~target:"trackA" ();
      Sc.transition ~trigger:"next" ~source:"trackA" ~target:"trackB" ();
      Sc.transition ~trigger:"next" ~source:"trackB" ~target:"trackA" ();
      Sc.transition ~trigger:"pause" ~source:"playing" ~target:"paused" ();
      Sc.transition ~trigger:"resume" ~source:"paused" ~target:"playing" ();
    ]

let history_tests =
  [
    test "without history, resume restarts at the default track" (fun () ->
        let fsm = Flatten.run (player ~history:false) in
        let final = F.final_state fsm [ "next"; "pause"; "resume" ] in
        check Alcotest.string "trackA" "trackA" final);
    test "with history, resume returns to the remembered track" (fun () ->
        let fsm = Flatten.run (player ~history:true) in
        let final = F.final_state fsm [ "next"; "pause"; "resume" ] in
        check Alcotest.bool "trackB resumed" true
          (Astring_contains.contains final "trackB");
        check Alcotest.bool "memory in name" true
          (Astring_contains.contains final "playing=trackB"));
    test "history entry actions still fire outer-to-inner" (fun () ->
        let fsm = Flatten.run (player ~history:true) in
        let steps = F.run fsm [ "next"; "pause"; "resume" ] in
        match List.rev steps with
        | last :: _ ->
            check Alcotest.(list string) "resume actions" [ "unmute"; "playB" ]
              last.F.actions
        | [] -> Alcotest.fail "no steps");
    test "history product stays deterministic and finite" (fun () ->
        let fsm = Flatten.run (player ~history:true) in
        check Alcotest.bool "det" true (F.is_deterministic fsm);
        (* leaves {paused, trackA, trackB} x memory {A, B} reachable
           subset only *)
        check Alcotest.bool "bounded" true (List.length fsm.F.states <= 6));
    test "history survives the XMI round-trip" (fun () ->
        let uml =
          Umlfront_uml.Model.make ~statecharts:[ player ~history:true ] "m"
        in
        let uml' = Umlfront_uml.Xmi.of_string (Umlfront_uml.Xmi.to_string uml) in
        match uml'.Umlfront_uml.Model.statecharts with
        | [ chart ] ->
            let fsm = Flatten.run chart in
            check Alcotest.bool "still history" true
              (Astring_contains.contains
                 (F.final_state fsm [ "next"; "pause"; "resume" ])
                 "trackB")
        | _ -> Alcotest.fail "chart lost");
    test "minimization applies to history products" (fun () ->
        let fsm = Flatten.run (player ~history:true) in
        let minimized = Minimize.run fsm in
        let traces =
          [ [ "next"; "pause"; "resume" ]; [ "pause"; "resume"; "next" ]; [ "next"; "next" ] ]
        in
        check Alcotest.bool "equivalent" true (F.simulate_equal fsm minimized traces));
  ]

(* Deep vs shallow: "playing" contains a nested composite "album" with
   two tracks; after pausing inside track2, deep history resumes
   track2, shallow restarts the album at its default track1. *)
let nested_player history =
  Sc.make "deepplayer"
    [
      Sc.state ~kind:Sc.Initial "init";
      Sc.state "paused";
      Sc.state ~history "playing"
        ~children:
          [
            Sc.state ~kind:Sc.Initial "p_init";
            Sc.state "album"
              ~children:
                [
                  Sc.state ~kind:Sc.Initial "a_init";
                  Sc.state "track1";
                  Sc.state "track2";
                ];
          ];
    ]
    [
      Sc.transition ~source:"init" ~target:"playing" ();
      Sc.transition ~source:"p_init" ~target:"album" ();
      Sc.transition ~source:"a_init" ~target:"track1" ();
      Sc.transition ~trigger:"next" ~source:"track1" ~target:"track2" ();
      Sc.transition ~trigger:"pause" ~source:"playing" ~target:"paused" ();
      Sc.transition ~trigger:"resume" ~source:"paused" ~target:"playing" ();
    ]

let deep_history_tests =
  [
    test "deep history resumes the exact leaf" (fun () ->
        let fsm = Flatten.run (nested_player Sc.Deep) in
        let final = F.final_state fsm [ "next"; "pause"; "resume" ] in
        check Alcotest.bool "track2" true (Astring_contains.contains final "track2"));
    test "shallow history restarts the nested composite" (fun () ->
        (* shallow remembers only the direct child ("album"); inside it
           the default entry applies again *)
        let fsm = Flatten.run (nested_player Sc.Shallow) in
        let final = F.final_state fsm [ "next"; "pause"; "resume" ] in
        check Alcotest.bool "track1" true (Astring_contains.contains final "track1"));
    test "no history restarts everything" (fun () ->
        let fsm = Flatten.run (nested_player Sc.No_history) in
        let final = F.final_state fsm [ "next"; "pause"; "resume" ] in
        check Alcotest.string "track1" "track1" final);
    test "deep history survives XMI" (fun () ->
        let uml =
          Umlfront_uml.Model.make ~statecharts:[ nested_player Sc.Deep ] "m"
        in
        let uml' = Umlfront_uml.Xmi.of_string (Umlfront_uml.Xmi.to_string uml) in
        match uml'.Umlfront_uml.Model.statecharts with
        | [ chart ] ->
            check Alcotest.bool "still deep" true
              (Astring_contains.contains
                 (F.final_state (Flatten.run chart) [ "next"; "pause"; "resume" ])
                 "track2")
        | _ -> Alcotest.fail "chart lost");
  ]

let codegen_tests =
  [
    test "header declares enums and step" (fun () ->
        let h = Codegen_c.header toggle in
        check Alcotest.bool "state enum" true
          (String.length h > 0
          && Astring_contains.contains h "TOGGLE_ST_OFF"
          && Astring_contains.contains h "TOGGLE_EV_PRESS"
          && Astring_contains.contains h "toggle_step"));
    test "source references actions" (fun () ->
        let s = Codegen_c.source toggle in
        check Alcotest.bool "action call" true
          (Astring_contains.contains s "toggle_action_light_on();"));
    test "generated C compiles" (fun () ->
        let dir = Filename.temp_file "fsmgen" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        Codegen_c.save toggle ~dir;
        let stub = Filename.concat dir "stub.c" in
        let oc = open_out stub in
        output_string oc
          "#include \"toggle.h\"\n\
           void toggle_action_light_on(void) {}\n\
           void toggle_action_light_off(void) {}\n\
           int main(void) { return toggle_step(toggle_initial(), TOGGLE_EV_PRESS) == TOGGLE_ST_ON ? 0 : 1; }\n";
        close_out oc;
        let bin = Filename.concat dir "t" in
        let cmd =
          Printf.sprintf "gcc -o %s %s %s 2>/dev/null" bin
            (Filename.concat dir "toggle.c")
            stub
        in
        check Alcotest.int "gcc ok" 0 (Sys.command cmd);
        check Alcotest.int "runs & transitions" 0 (Sys.command bin));
    test "dot export names every state" (fun () ->
        let d = Dot.to_string toggle in
        check Alcotest.bool "has states" true
          (Astring_contains.contains d "\"off\"" && Astring_contains.contains d "\"on\""));
  ]

let suite =
  [
    ("fsm:core", fsm_tests);
    ("fsm:minimize", minimize_tests);
    ("fsm:flatten", flatten_tests);
    ("fsm:history", history_tests);
    ("fsm:deep_history", deep_history_tests);
    ("fsm:codegen", codegen_tests);
  ]
