(* The extended block library (Abs, Sqrt, Trig, MinMax, Math) through
   the whole chain: library lookup, mapping, execution semantics, C
   codegen (compiled and diffed against the executor), and reverse
   capture. *)

module U = Umlfront_uml
module Core = Umlfront_core
module B = Umlfront_simulink.Block
module Library = Umlfront_simulink.Library
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Gen_threads = Umlfront_codegen.Gen_threads

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let arg = U.Sequence.arg
let f32 = U.Datatype.D_float

(* One thread exercising the whole math library:
   x = getIn(); s = sin(x); c = cos(x); m = max(s, c); a = abs(m);
   q = sqrt(a); e = exp(q); setOut(e). *)
let math_uml () =
  let b = U.Builder.create "mathbox" in
  U.Builder.thread b "T";
  U.Builder.platform b "Platform";
  U.Builder.io_device b "IO";
  U.Builder.cpu b "CPU";
  U.Builder.allocate b ~thread:"T" ~cpu:"CPU";
  U.Builder.call b ~from:"T" ~target:"IO" "getIn" ~result:(arg "x" f32);
  U.Builder.call b ~from:"T" ~target:"Platform" "sin" ~args:[ arg "x" f32 ]
    ~result:(arg "s" f32);
  U.Builder.call b ~from:"T" ~target:"Platform" "cos" ~args:[ arg "x" f32 ]
    ~result:(arg "c" f32);
  U.Builder.call b ~from:"T" ~target:"Platform" "max"
    ~args:[ arg "s" f32; arg "c" f32 ]
    ~result:(arg "m" f32);
  U.Builder.call b ~from:"T" ~target:"Platform" "abs" ~args:[ arg "m" f32 ]
    ~result:(arg "a" f32);
  U.Builder.call b ~from:"T" ~target:"Platform" "sqrt" ~args:[ arg "a" f32 ]
    ~result:(arg "q" f32);
  U.Builder.call b ~from:"T" ~target:"Platform" "exp" ~args:[ arg "q" f32 ]
    ~result:(arg "e" f32);
  U.Builder.call b ~from:"T" ~target:"IO" "setOut" ~args:[ arg "e" f32 ];
  U.Builder.finish b

let flow () = Core.Flow.run ~strategy:Core.Flow.Use_deployment (math_uml ())

let library_tests =
  [
    test "new methods resolve to library blocks" (fun () ->
        List.iter
          (fun (name, ty) ->
            match Library.lookup name with
            | Some e -> check Alcotest.bool name true (e.Library.block_type = ty)
            | None -> Alcotest.fail (name ^ " not in library"))
          [
            ("abs", B.Abs); ("sqrt", B.Sqrt); ("sin", B.Trig); ("cos", B.Trig);
            ("tan", B.Trig); ("min", B.Min_max); ("max", B.Min_max);
            ("exp", B.Math); ("log", B.Math);
          ]);
    test "Function parameter distinguishes variants" (fun () ->
        match (Library.lookup "sin", Library.lookup "cos") with
        | Some s, Some c ->
            check Alcotest.bool "sin" true
              (List.assoc_opt "Function" s.Library.params = Some (B.P_string "sin"));
            check Alcotest.bool "cos" true
              (List.assoc_opt "Function" c.Library.params = Some (B.P_string "cos"))
        | _ -> Alcotest.fail "library entries missing");
    test "block type names round-trip" (fun () ->
        List.iter
          (fun ty -> check Alcotest.bool (B.to_string ty) true (B.of_string (B.to_string ty) = ty))
          [ B.Abs; B.Sqrt; B.Trig; B.Min_max; B.Math ]);
  ]

let semantics_tests =
  [
    test "executor computes exp(sqrt(abs(max(sin x, cos x))))" (fun () ->
        let out = flow () in
        let sdf = Sdf.of_model out.Core.Flow.caam in
        let stimulus _ round = 0.5 +. (0.3 *. float_of_int round) in
        let outcome = Exec.run ~stimulus ~rounds:4 sdf in
        let samples = List.assoc "Out" outcome.Exec.traces in
        Array.iteri
          (fun round v ->
            let x = stimulus () round in
            let expected = exp (sqrt (Float.abs (Float.max (sin x) (cos x)))) in
            check (Alcotest.float 1e-12) (Printf.sprintf "round %d" round) expected v)
          samples);
    test "mapping instantiated the right block types" (fun () ->
        let out = flow () in
        let rec thread_sys sys = function
          | [] -> sys
          | p :: rest ->
              thread_sys
                (Option.get
                   Umlfront_simulink.System.((find_block_exn sys p).blk_system))
                rest
        in
        let sys =
          thread_sys out.Core.Flow.caam.Umlfront_simulink.Model.root [ "CPU"; "T" ]
        in
        List.iter
          (fun (name, ty) ->
            match Umlfront_simulink.System.find_block sys name with
            | Some b ->
                check Alcotest.bool name true (b.Umlfront_simulink.System.blk_type = ty)
            | None -> Alcotest.fail (name ^ " block missing"))
          [
            ("sin", B.Trig); ("cos", B.Trig); ("max", B.Min_max); ("abs", B.Abs);
            ("sqrt", B.Sqrt); ("exp", B.Math);
          ]);
  ]

let codegen_tests =
  [
    test "generated C matches the executor on math blocks" (fun () ->
        let out = flow () in
        let caam = out.Core.Flow.caam in
        let dir = Filename.temp_file "umlfront_math" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        List.iter
          (fun (name, content) ->
            let oc = open_out (Filename.concat dir name) in
            output_string oc content;
            close_out oc)
          (Gen_threads.generate ~rounds:5 caam).Gen_threads.files;
        let bin = Filename.concat dir "model" in
        let cmd =
          Printf.sprintf "gcc -pthread -o %s %s/model.c %s/sfunctions.c %s/fifo.c -lm 2>&1"
            bin dir dir dir
        in
        check Alcotest.int "gcc" 0 (Sys.command cmd);
        let ic = Unix.open_process_in (bin ^ " 2>/dev/null") in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        ignore (Unix.close_process_in ic);
        let lines = List.rev !lines in
        let sdf = Sdf.of_model caam in
        let reference = (Exec.run ~rounds:5 sdf).Exec.traces in
        let samples = snd (List.hd reference) in
        List.iteri
          (fun i line ->
            match String.split_on_char ' ' line with
            | [ _; _; value ] ->
                check (Alcotest.float 1e-6) (Printf.sprintf "round %d" i) samples.(i)
                  (float_of_string value)
            | _ -> Alcotest.fail ("bad line " ^ line))
          lines);
    test "systemc references std math" (fun () ->
        let out = flow () in
        let sc = Umlfront_codegen.Gen_systemc.generate out.Core.Flow.caam in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true (Astring_contains.contains sc needle))
          [ "std::sin"; "std::cos"; "std::fmax"; "std::fabs"; "std::sqrt"; "std::exp" ]);
    test "java references Math" (fun () ->
        let out = flow () in
        let java = Umlfront_codegen.Gen_java.generate out.Core.Flow.caam in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true (Astring_contains.contains java needle))
          [ "Math.sin"; "Math.cos"; "Math.max"; "Math.abs"; "Math.sqrt"; "Math.exp" ]);
  ]

let capture_tests =
  [
    test "capture recovers the exact Platform methods" (fun () ->
        let out = flow () in
        let recovered = Core.Capture.run out.Core.Flow.caam in
        let ops =
          U.Model.behaviours recovered
          |> List.concat_map (fun (sd : U.Sequence.t) -> sd.U.Sequence.sd_messages)
          |> List.filter (fun (m : U.Sequence.message) ->
                 U.Model.kind_of_instance recovered m.U.Sequence.msg_to
                 = Some U.Classifier.Platform)
          |> List.map (fun (m : U.Sequence.message) -> m.U.Sequence.msg_operation)
          |> List.sort compare
        in
        check Alcotest.(list string) "methods"
          [ "abs"; "cos"; "exp"; "max"; "sin"; "sqrt" ]
          ops);
    test "behavioural round-trip with math blocks" (fun () ->
        let out = flow () in
        let recovered = Core.Capture.run out.Core.Flow.caam in
        let out2 = Core.Flow.run ~strategy:Core.Flow.Use_deployment recovered in
        let stimulus _ round = 0.2 +. (0.1 *. float_of_int round) in
        let t1 =
          (Exec.run ~stimulus ~rounds:5 (Sdf.of_model out.Core.Flow.caam)).Exec.traces
        in
        let t2 =
          (Exec.run ~stimulus ~rounds:5 (Sdf.of_model out2.Core.Flow.caam)).Exec.traces
        in
        List.iter2
          (fun (p1, s1) (p2, s2) ->
            check Alcotest.string "port" p1 p2;
            check Alcotest.(array (float 1e-12)) p1 s1 s2)
          t1 t2);
  ]

let suite =
  [
    ("blocks:library", library_tests);
    ("blocks:semantics", semantics_tests);
    ("blocks:codegen", codegen_tests);
    ("blocks:capture", capture_tests);
  ]
