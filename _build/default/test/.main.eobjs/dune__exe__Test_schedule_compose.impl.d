test/test_schedule_compose.ml: Alcotest Float List QCheck QCheck_alcotest Umlfront_fsm Umlfront_taskgraph
