test/test_simulink.ml: Alcotest Format List String Umlfront_simulink
