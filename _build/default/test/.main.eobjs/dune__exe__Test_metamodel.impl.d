test/test_metamodel.ml: Alcotest List Option Umlfront_metamodel
