test/test_dataflow.ml: Alcotest Array Fun List Option Test_simulink Umlfront_dataflow Umlfront_simulink Umlfront_taskgraph
