test/test_codegen.ml: Alcotest Array Astring_contains Filename List Printf String Sys Umlfront_codegen Umlfront_core Umlfront_dataflow Umlfront_simulink Umlfront_uml Unix
