test/test_transform.ml: Alcotest List Option Umlfront_metamodel Umlfront_transform
