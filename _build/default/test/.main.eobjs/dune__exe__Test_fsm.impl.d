test/test_fsm.ml: Alcotest Astring_contains Filename List Printf String Sys Umlfront_fsm Umlfront_uml
