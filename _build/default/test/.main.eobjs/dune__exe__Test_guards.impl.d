test/test_guards.ml: Alcotest Astring_contains Filename List Option Printf QCheck QCheck_alcotest Sys Umlfront_fsm
