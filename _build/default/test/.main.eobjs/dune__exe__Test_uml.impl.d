test/test_uml.ml: Alcotest Astring_contains Builder Classifier Datatype Deployment List Model Operation Option Sequence Statechart Stereotype String Umlfront_uml Validate Xmi
