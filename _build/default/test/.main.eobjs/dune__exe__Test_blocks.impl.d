test/test_blocks.ml: Alcotest Array Astring_contains Filename Float List Option Printf String Sys Umlfront_codegen Umlfront_core Umlfront_dataflow Umlfront_simulink Umlfront_uml Unix
