test/main.mli:
