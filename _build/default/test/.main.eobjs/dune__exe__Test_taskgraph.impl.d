test/test_taskgraph.ml: Alcotest Float List Printf QCheck QCheck_alcotest Umlfront_taskgraph
