test/test_cosim.ml: Alcotest Array Astring_contains Float List Printf Umlfront_cosim Umlfront_dataflow Umlfront_fsm Umlfront_simulink
