module G = Umlfront_taskgraph.Graph
module Algo = Umlfront_taskgraph.Algo
module C = Umlfront_taskgraph.Clustering
module Lc = Umlfront_taskgraph.Linear_clustering
module Dsc = Umlfront_taskgraph.Dsc
module Ez = Umlfront_taskgraph.Edge_zeroing
module Baselines = Umlfront_taskgraph.Baselines
module Gen = Umlfront_taskgraph.Generator

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let diamond () =
  (* a -> b, a -> c, b -> d, c -> d; classic fork-join. *)
  G.of_lists
    ~nodes:[ ("a", 2.0); ("b", 3.0); ("c", 1.0); ("d", 2.0) ]
    ~edges:[ ("a", "b", 4.0); ("a", "c", 1.0); ("b", "d", 4.0); ("c", "d", 1.0) ]

let cyclic () =
  G.of_lists
    ~nodes:[ ("x", 1.0); ("y", 1.0); ("z", 1.0) ]
    ~edges:[ ("x", "y", 1.0); ("y", "z", 1.0); ("z", "x", 1.0) ]

let graph_tests =
  [
    test "nodes in insertion order" (fun () ->
        check Alcotest.(list string) "order" [ "a"; "b"; "c"; "d" ] (G.nodes (diamond ())));
    test "succs and preds" (fun () ->
        let g = diamond () in
        check Alcotest.(list string) "succs a" [ "b"; "c" ] (G.succs g "a");
        check Alcotest.(list string) "preds d" [ "b"; "c" ] (G.preds g "d"));
    test "edge weight accumulates on re-add" (fun () ->
        let g = diamond () in
        G.add_edge g ~weight:2.5 "a" "b";
        check (Alcotest.float 1e-9) "acc" 6.5 (G.edge_weight g "a" "b"));
    test "add_node re-weights" (fun () ->
        let g = diamond () in
        G.add_node g ~weight:9.0 "a";
        check (Alcotest.float 1e-9) "w" 9.0 (G.node_weight g "a");
        check Alcotest.int "no dup" 4 (G.node_count g));
    test "remove_edge" (fun () ->
        let g = diamond () in
        G.remove_edge g "a" "b";
        check Alcotest.bool "gone" false (G.mem_edge g "a" "b");
        check Alcotest.int "count" 3 (G.edge_count g));
    test "transpose flips edges" (fun () ->
        let t = G.transpose (diamond ()) in
        check Alcotest.bool "flipped" true (G.mem_edge t "b" "a");
        check Alcotest.bool "not original" false (G.mem_edge t "a" "b"));
    test "copy is independent" (fun () ->
        let g = diamond () in
        let g' = G.copy g in
        G.remove_edge g' "a" "b";
        check Alcotest.bool "original intact" true (G.mem_edge g "a" "b"));
    test "total edge weight" (fun () ->
        check (Alcotest.float 1e-9) "sum" 10.0 (G.total_edge_weight (diamond ())));
  ]

let topo_is_valid g order =
  let pos = List.mapi (fun i n -> (n, i)) order in
  List.for_all
    (fun (s, d, _) -> List.assoc s pos < List.assoc d pos)
    (G.edges g)
  && List.length order = G.node_count g

let algo_tests =
  [
    test "topological sort valid on diamond" (fun () ->
        let g = diamond () in
        check Alcotest.bool "valid" true (topo_is_valid g (Algo.topological_sort g)));
    test "cycle raises with a real cycle" (fun () ->
        let g = cyclic () in
        match Algo.topological_sort g with
        | exception Algo.Cycle cycle ->
            check Alcotest.bool "non-empty" true (cycle <> []);
            (* consecutive nodes connected, last wraps to first *)
            let rec consecutive = function
              | a :: (b :: _ as rest) -> G.mem_edge g a b && consecutive rest
              | [ last ] -> G.mem_edge g last (List.hd cycle)
              | [] -> true
            in
            check Alcotest.bool "edges exist" true (consecutive cycle)
        | _ -> Alcotest.fail "expected Cycle");
    test "is_acyclic" (fun () ->
        check Alcotest.bool "diamond" true (Algo.is_acyclic (diamond ()));
        check Alcotest.bool "cyclic" false (Algo.is_acyclic (cyclic ())));
    test "sources and sinks" (fun () ->
        let g = diamond () in
        check Alcotest.(list string) "sources" [ "a" ] (Algo.sources g);
        check Alcotest.(list string) "sinks" [ "d" ] (Algo.sinks g));
    test "top_level hand computed" (fun () ->
        let tl = Algo.top_level (diamond ()) in
        check (Alcotest.float 1e-9) "a" 0.0 (tl "a");
        check (Alcotest.float 1e-9) "b" 6.0 (tl "b");
        check (Alcotest.float 1e-9) "c" 3.0 (tl "c");
        (* via b: 6 + 3 + 4 = 13; via c: 3 + 1 + 1 = 5 *)
        check (Alcotest.float 1e-9) "d" 13.0 (tl "d"));
    test "bottom_level hand computed" (fun () ->
        let bl = Algo.bottom_level (diamond ()) in
        check (Alcotest.float 1e-9) "d" 2.0 (bl "d");
        check (Alcotest.float 1e-9) "b" 9.0 (bl "b");
        check (Alcotest.float 1e-9) "c" 4.0 (bl "c");
        check (Alcotest.float 1e-9) "a" 15.0 (bl "a"));
    test "critical path of diamond" (fun () ->
        let path, length = Algo.critical_path (diamond ()) in
        check Alcotest.(list string) "path" [ "a"; "b"; "d" ] path;
        check (Alcotest.float 1e-9) "length" 15.0 length);
    test "longest path between" (fun () ->
        let g = diamond () in
        check Alcotest.(option (list string)) "a to d" (Some [ "a"; "b"; "d" ])
          (Algo.longest_path_between g ~src:"a" ~dst:"d");
        check Alcotest.(option (list string)) "unreachable" None
          (Algo.longest_path_between g ~src:"d" ~dst:"a"));
    test "reachable" (fun () ->
        let g = diamond () in
        check Alcotest.int "from a" 3 (List.length (Algo.reachable g "a"));
        check Alcotest.int "from d" 0 (List.length (Algo.reachable g "d")));
  ]

let clustering_tests =
  [
    test "of_groups rejects overlap" (fun () ->
        match C.of_groups [ [ "a"; "b" ]; [ "b" ] ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "cluster_of and same_cluster" (fun () ->
        let c = C.of_groups [ [ "a"; "b" ]; [ "c" ] ] in
        check Alcotest.int "a" 0 (C.cluster_of c "a");
        check Alcotest.bool "same" true (C.same_cluster c "a" "b");
        check Alcotest.bool "diff" false (C.same_cluster c "a" "c"));
    test "merge renumbers densely" (fun () ->
        let c = C.of_groups [ [ "a" ]; [ "b" ]; [ "c" ] ] in
        let merged = C.merge c 0 2 in
        check Alcotest.int "count" 2 (C.cluster_count merged);
        check Alcotest.bool "a with c" true (C.same_cluster merged "a" "c"));
    test "is_partition_of" (fun () ->
        let g = diamond () in
        check Alcotest.bool "ok" true
          (C.is_partition_of g (C.of_groups [ [ "a"; "b" ]; [ "c"; "d" ] ]));
        check Alcotest.bool "missing node" false
          (C.is_partition_of g (C.of_groups [ [ "a"; "b" ]; [ "c" ] ])));
    test "is_linear distinguishes chains from antichains" (fun () ->
        let g = diamond () in
        check Alcotest.bool "chain" true (C.is_linear g (C.of_groups [ [ "a"; "b"; "d" ]; [ "c" ] ]));
        check Alcotest.bool "parallel pair" false
          (C.is_linear g (C.of_groups [ [ "b"; "c" ]; [ "a" ]; [ "d" ] ])));
    test "inter and intra volume partition total" (fun () ->
        let g = diamond () in
        let c = C.of_groups [ [ "a"; "b"; "d" ]; [ "c" ] ] in
        check (Alcotest.float 1e-9) "inter" 2.0 (C.inter_cluster_volume g c);
        check (Alcotest.float 1e-9) "intra" 8.0 (C.intra_cluster_volume g c));
    test "sequential time" (fun () ->
        check (Alcotest.float 1e-9) "sum" 8.0 (C.sequential_time (diamond ())));
    test "schedule single cluster = sequential" (fun () ->
        let g = diamond () in
        check (Alcotest.float 1e-9) "seq" (C.sequential_time g)
          (C.parallel_time g (Baselines.single_cluster g)));
    test "schedule hand computed, one per node" (fun () ->
        (* a: 0-2; b: ready 2+4=6, 6-9; c: ready 3, 3-4; d: ready max(9+4, 4+1)=13, 13-15 *)
        let g = diamond () in
        check (Alcotest.float 1e-9) "makespan" 15.0
          (C.parallel_time g (Baselines.one_per_node g)));
    test "schedule respects processor exclusivity" (fun () ->
        let g = diamond () in
        let c = C.of_groups [ [ "b"; "c" ]; [ "a" ]; [ "d" ] ] in
        let sched = C.schedule g c in
        let entries p =
          List.filter (fun (s : C.scheduled) -> s.C.processor = p) sched
        in
        List.iter
          (fun p ->
            let sorted =
              List.sort (fun a b -> Float.compare a.C.start b.C.start) (entries p)
            in
            let rec no_overlap = function
              | a :: (b :: _ as rest) ->
                  check Alcotest.bool "no overlap" true (a.C.finish <= b.C.start +. 1e-9);
                  no_overlap rest
              | [ _ ] | [] -> ()
            in
            no_overlap sorted)
          [ 0; 1; 2 ]);
    test "critical_path_cluster" (fun () ->
        let g = diamond () in
        check Alcotest.bool "together" true
          (C.critical_path_cluster g (C.of_groups [ [ "a"; "b"; "d" ]; [ "c" ] ]));
        check Alcotest.bool "split" false
          (C.critical_path_cluster g (Baselines.one_per_node g)));
  ]

let lc_tests =
  [
    test "diamond: critical path in first cluster" (fun () ->
        let g = diamond () in
        let c = Lc.run g in
        check Alcotest.(list (list string)) "groups" [ [ "a"; "b"; "d" ]; [ "c" ] ]
          (C.groups c));
    test "cyclic graph rejected" (fun () ->
        match Lc.run (cyclic ()) with
        | exception Algo.Cycle _ -> ()
        | _ -> Alcotest.fail "expected Cycle");
    test "chain collapses to one cluster" (fun () ->
        let g = Gen.chain ~n:10 in
        check Alcotest.int "one" 1 (C.cluster_count (Lc.run g)));
    test "bounded caps cluster count" (fun () ->
        let g = Gen.layered ~seed:7 ~layers:5 ~width:5 ~edge_probability:0.4 ~ccr:1.0 () in
        let c = Lc.run_bounded ~max_clusters:3 g in
        check Alcotest.bool "<= 3" true (C.cluster_count c <= 3);
        check Alcotest.bool "partition" true (C.is_partition_of g c));
    test "fork-join keeps branches apart" (fun () ->
        let g = Gen.fork_join ~seed:3 ~branches:4 ~depth:3 ~ccr:1.0 () in
        let c = Lc.run g in
        check Alcotest.bool ">= branches" true (C.cluster_count c >= 4));
  ]

let arbitrary_dag =
  QCheck.make
    ~print:(fun (seed, layers, width) -> Printf.sprintf "seed=%d layers=%d width=%d" seed layers width)
    QCheck.Gen.(triple (int_bound 1000) (1 -- 6) (1 -- 5))

let dag_of (seed, layers, width) =
  Gen.layered ~seed ~layers ~width ~edge_probability:0.5 ~ccr:1.0 ()

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generator produces DAGs" ~count:100 arbitrary_dag
         (fun params -> Algo.is_acyclic (dag_of params)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"topological sort is valid" ~count:100 arbitrary_dag
         (fun params ->
           let g = dag_of params in
           topo_is_valid g (Algo.topological_sort g)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"linear clustering is a linear partition" ~count:100
         arbitrary_dag
         (fun params ->
           let g = dag_of params in
           let c = Lc.run g in
           C.is_partition_of g c && C.is_linear g c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"linear clustering keeps critical path together"
         ~count:100 arbitrary_dag
         (fun params ->
           let g = dag_of params in
           C.critical_path_cluster g (Lc.run g)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"dsc produces a partition" ~count:100 arbitrary_dag
         (fun params ->
           let g = dag_of params in
           C.is_partition_of g (Dsc.run g)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"edge zeroing never beats nothing but never hurts"
         ~count:50 arbitrary_dag
         (fun params ->
           let g = dag_of params in
           C.parallel_time g (Ez.run g)
           <= C.parallel_time g (Baselines.one_per_node g) +. 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"schedule start times respect dependencies" ~count:50
         arbitrary_dag
         (fun params ->
           let g = dag_of params in
           let c = Lc.run g in
           let sched = C.schedule g c in
           let finish n =
             (List.find (fun (s : C.scheduled) -> s.C.task = n) sched).C.finish
           in
           List.for_all
             (fun (s : C.scheduled) ->
               List.for_all
                 (fun p ->
                   let comm =
                     if C.same_cluster c p s.C.task then 0.0 else G.edge_weight g p s.C.task
                   in
                   s.C.start +. 1e-9 >= finish p +. comm)
                 (G.preds g s.C.task))
             sched));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"baselines are partitions" ~count:50 arbitrary_dag
         (fun params ->
           let g = dag_of params in
           C.is_partition_of g (Baselines.single_cluster g)
           && C.is_partition_of g (Baselines.one_per_node g)
           && C.is_partition_of g (Baselines.round_robin ~cpus:3 g)
           && C.is_partition_of g (Baselines.random ~seed:1 ~cpus:3 g)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ccr scaling is honoured" ~count:50
         QCheck.(pair (QCheck.make QCheck.Gen.(int_bound 1000)) (QCheck.make QCheck.Gen.(2 -- 5)))
         (fun (seed, layers) ->
           let g =
             Gen.layered ~seed ~layers ~width:4 ~edge_probability:0.6 ~ccr:2.0 ()
           in
           G.edge_count g = 0
           || Float.abs ((G.total_edge_weight g /. C.sequential_time g) -. 2.0) < 1e-6));
  ]

(* Exhaustive reference: longest path by enumerating all paths (small
   graphs only). *)
let brute_force_longest g =
  let rec best_from node =
    let tail =
      List.fold_left
        (fun acc s -> Float.max acc (G.edge_weight g node s +. best_from s))
        0.0 (G.succs g node)
    in
    G.node_weight g node +. tail
  in
  List.fold_left (fun acc n -> Float.max acc (best_from n)) 0.0 (G.nodes g)

let brute_force_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"critical path length matches brute force" ~count:100
         (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
         (fun seed ->
           let g =
             Gen.layered ~seed ~layers:3 ~width:3 ~edge_probability:0.6 ~ccr:1.0 ()
           in
           let _, length = Algo.critical_path g in
           Float.abs (length -. brute_force_longest g) < 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"critical path nodes realize the reported length" ~count:100
         (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
         (fun seed ->
           let g =
             Gen.layered ~seed ~layers:4 ~width:3 ~edge_probability:0.5 ~ccr:1.0 ()
           in
           let path, length = Algo.critical_path g in
           let rec walk = function
             | a :: (b :: _ as rest) ->
                 G.node_weight g a +. G.edge_weight g a b +. walk rest
             | [ last ] -> G.node_weight g last
             | [] -> 0.0
           in
           Float.abs (walk path -. length) < 1e-6));
  ]

let suite =
  [
    ("taskgraph:graph", graph_tests);
    ("taskgraph:brute_force", brute_force_tests);
    ("taskgraph:algo", algo_tests);
    ("taskgraph:clustering", clustering_tests);
    ("taskgraph:linear_clustering", lc_tests);
    ("taskgraph:properties", property_tests);
  ]
