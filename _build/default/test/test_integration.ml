(* End-to-end properties: random UML models through the whole flow. *)

module U = Umlfront_uml
module Core = Umlfront_core
module Model = Umlfront_simulink.Model
module Caam = Umlfront_simulink.Caam
module Parser = Umlfront_simulink.Mdl_parser
module Writer = Umlfront_simulink.Mdl_writer
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module Kpn = Umlfront_dataflow.Kpn

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let random_uml ~seed ~threads ~extra_edges =
  Umlfront_casestudies.Random_models.pipeline ~seed ~threads ~extra_edges

let arbitrary_params =
  QCheck.make
    ~print:(fun (seed, threads, extra) ->
      Printf.sprintf "seed=%d threads=%d extra=%d" seed threads extra)
    QCheck.Gen.(triple (int_bound 10_000) (2 -- 8) (0 -- 6))

let flow_of (seed, threads, extra) =
  Core.Flow.run ~strategy:Core.Flow.Infer_linear
    (random_uml ~seed ~threads ~extra_edges:extra)

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random UML models are well-formed" ~count:60
         arbitrary_params
         (fun (seed, threads, extra) ->
           U.Validate.check (random_uml ~seed ~threads ~extra_edges:extra) = []));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"flow output passes structural and CAAM validation"
         ~count:40 arbitrary_params
         (fun params ->
           let out = flow_of params in
           Model.validate out.Core.Flow.caam = [] && Caam.check out.Core.Flow.caam = []));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"flow output executes deadlock-free" ~count:40
         arbitrary_params
         (fun params ->
           let out = flow_of params in
           let sdf = Sdf.of_model out.Core.Flow.caam in
           let outcome = Exec.run ~rounds:3 sdf in
           outcome.Exec.rounds = 3));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mdl text round-trips to identical stats" ~count:30
         arbitrary_params
         (fun params ->
           let out = flow_of params in
           Model.stats (Parser.parse_string out.Core.Flow.mdl)
           = Model.stats out.Core.Flow.caam));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"xmi round-trip preserves the flow result" ~count:20
         arbitrary_params
         (fun (seed, threads, extra) ->
           let uml = random_uml ~seed ~threads ~extra_edges:extra in
           let uml' = U.Xmi.of_string (U.Xmi.to_string uml) in
           let a = Core.Flow.run ~strategy:Core.Flow.Infer_linear uml in
           let b = Core.Flow.run ~strategy:Core.Flow.Infer_linear uml' in
           Writer.to_string a.Core.Flow.caam = Writer.to_string b.Core.Flow.caam));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"KPN execution of the CAAM terminates" ~count:15
         arbitrary_params
         (fun params ->
           let out = flow_of params in
           let sdf = Sdf.of_model out.Core.Flow.caam in
           let outcome = Kpn.run ~fuel:1_000_000 (Kpn.of_sdf ~rounds:2 sdf) in
           outcome.Kpn.steps > 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"allocation strategies agree on thread coverage" ~count:30
         arbitrary_params
         (fun (seed, threads, extra) ->
           let uml = random_uml ~seed ~threads ~extra_edges:extra in
           let linear = Core.Allocation.infer uml in
           let bounded = Core.Allocation.infer ~strategy:(Core.Allocation.Bounded 2) uml in
           List.map fst linear = List.map fst bounded
           && List.length linear = threads));
  ]

let example_tests =
  [
    test "quickstart binary shape: channel protocols split" (fun () ->
        let out = flow_of (1, 4, 2) in
        (* every channel protocol matches its nesting level *)
        List.iter
          (fun (path, ch) ->
            let expected =
              match Caam.classify_channel ~path with
              | Caam.Inter_cpu -> "GFIFO"
              | Caam.Intra_cpu -> "SWFIFO"
            in
            check Alcotest.(option string) "protocol" (Some expected) (Caam.protocol ch))
          (Caam.channels out.Core.Flow.caam));
    test "deterministic: same seed, same mdl" (fun () ->
        let a = flow_of (7, 5, 3) and b = flow_of (7, 5, 3) in
        check Alcotest.string "identical" a.Core.Flow.mdl b.Core.Flow.mdl);
    test "bigger models scale structurally" (fun () ->
        let out = flow_of (3, 8, 6) in
        let stats = Model.stats out.Core.Flow.caam in
        check Alcotest.bool "many blocks" true (List.assoc "blocks" stats > 40));
  ]

let suite =
  [ ("integration:properties", property_tests); ("integration:examples", example_tests) ]
