module U = Umlfront_uml
module Core = Umlfront_core
module B = Umlfront_simulink.Block
module S = Umlfront_simulink.System
module Model = Umlfront_simulink.Model
module Caam = Umlfront_simulink.Caam
module Parser = Umlfront_simulink.Mdl_parser
module Sdf = Umlfront_dataflow.Sdf
module Exec = Umlfront_dataflow.Exec
module G = Umlfront_taskgraph.Graph
module Trace = Umlfront_metamodel.Trace

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

let didactic () = Umlfront_casestudies.Didactic.model ()

let deployment_allocation uml =
  match Core.Allocation.from_deployment uml with
  | Some a -> a
  | None -> Alcotest.fail "expected a deployment"

let find_at root path name =
  let rec descend sys = function
    | [] -> S.find_block sys name
    | p :: rest -> (
        match (S.find_block_exn sys p).S.blk_system with
        | Some inner -> descend inner rest
        | None -> None)
  in
  descend root path

let mapping_tests =
  [
    test "thread missing from allocation rejected" (fun () ->
        match Core.Mapping.run ~allocation:[ ("T1", "CPU1") ] (didactic ()) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "CPU-SS per processor, Thread-SS per thread" (fun () ->
        let uml = didactic () in
        let r = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        let cpus = Caam.cpus r.Core.Mapping.model in
        check Alcotest.(list string) "cpus" [ "CPU1"; "CPU2" ]
          (List.map (fun b -> b.S.blk_name) cpus);
        check Alcotest.(list (pair string string)) "threads"
          [ ("T1", "CPU1"); ("T2", "CPU1"); ("T3", "CPU2") ]
          (Caam.thread_names r.Core.Mapping.model));
    test "Platform call becomes a Product block" (fun () ->
        let uml = didactic () in
        let r = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        match find_at r.Core.Mapping.model.Model.root [ "CPU1"; "T1" ] "mult" with
        | Some blk -> check Alcotest.bool "product" true (blk.S.blk_type = B.Product)
        | None -> Alcotest.fail "mult not found");
    test "passive call becomes an S-Function" (fun () ->
        let uml = didactic () in
        let r = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        match find_at r.Core.Mapping.model.Model.root [ "CPU1"; "T1" ] "calc" with
        | Some blk ->
            check Alcotest.bool "sfun" true (blk.S.blk_type = B.S_function);
            check Alcotest.(option string) "fn" (Some "calc")
              (S.param_string blk "FunctionName")
        | None -> Alcotest.fail "calc not found");
    test "unknown Platform method falls back to S-Function" (fun () ->
        let b = U.Builder.create "x" in
        U.Builder.thread b "T";
        U.Builder.platform b "P";
        U.Builder.cpu b "CPU";
        U.Builder.allocate b ~thread:"T" ~cpu:"CPU";
        U.Builder.call b ~from:"T" ~target:"P" "exotic"
          ~result:(U.Sequence.arg "r" U.Datatype.D_float);
        let uml = U.Builder.finish b in
        let r = Core.Mapping.run ~allocation:[ ("T", "CPU") ] uml in
        match find_at r.Core.Mapping.model.Model.root [ "CPU"; "T" ] "exotic" with
        | Some blk -> check Alcotest.bool "sfun" true (blk.S.blk_type = B.S_function)
        | None -> Alcotest.fail "exotic not found");
    test "IO calls become system ports" (fun () ->
        let uml = didactic () in
        let r = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        let root = r.Core.Mapping.model.Model.root in
        check Alcotest.bool "Sensor in" true
          (match S.find_block root "Sensor" with
          | Some b -> b.S.blk_type = B.Inport
          | None -> false);
        check Alcotest.bool "Actuator out" true
          (match S.find_block root "Actuator" with
          | Some b -> b.S.blk_type = B.Outport
          | None -> false));
    test "token reuse creates a data link" (fun () ->
        (* r1 feeds both dec and mult inside T1 *)
        let uml = didactic () in
        let r = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        let rec t1_sys sys = function
          | [] -> sys
          | p :: rest -> t1_sys (Option.get (S.find_block_exn sys p).S.blk_system) rest
        in
        let t1 = t1_sys r.Core.Mapping.model.Model.root [ "CPU1"; "T1" ] in
        check Alcotest.int "calc fans out" 2 (List.length (S.consumers t1 "calc" 1)));
    test "cross-thread links counted" (fun () ->
        let uml = didactic () in
        let r = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        check Alcotest.int "two" 2 r.Core.Mapping.cross_links);
    test "trace records thread and message rules" (fun () ->
        let uml = didactic () in
        let r = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        check Alcotest.(list string) "T1 target" [ "CPU1/T1" ]
          (Trace.targets_of ~rule:"thread_to_thread_ss" r.Core.Mapping.trace "T1");
        check Alcotest.bool "message rule used" true
          (List.mem "message_to_block" (Trace.rules r.Core.Mapping.trace)));
    test "flat style puts threads at top level" (fun () ->
        let uml = didactic () in
        let r =
          Core.Mapping.run ~style:Core.Mapping.Flat
            ~allocation:(deployment_allocation uml) uml
        in
        let root = r.Core.Mapping.model.Model.root in
        check Alcotest.bool "T1 at top" true (S.find_block root "T1" <> None);
        check Alcotest.int "no cpus" 0 (List.length (Caam.cpus r.Core.Mapping.model)));
    test "mapped model validates structurally" (fun () ->
        let uml = didactic () in
        let r = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        check Alcotest.int "clean" 0 (List.length (Model.validate r.Core.Mapping.model)));
  ]

let out_param_tests =
  [
    test "out parameters become extra output ports" (fun () ->
        (* split produces a result q and an out parameter r; both feed
           separate consumers. *)
        let b = U.Builder.create "outs" in
        U.Builder.thread b "T";
        U.Builder.io_device b "IO";
        U.Builder.passive_object b ~cls:"W" "w";
        U.Builder.cpu b "CPU";
        U.Builder.allocate b ~thread:"T" ~cpu:"CPU";
        let arg = U.Sequence.arg in
        let f = U.Datatype.D_float in
        U.Builder.call b ~from:"T" ~target:"IO" "getIn" ~result:(arg "x" f);
        U.Builder.call b ~from:"T" ~target:"w" "split" ~args:[ arg "x" f ]
          ~result:(arg "q" f) ~outs:[ arg "r" f ];
        U.Builder.call b ~from:"T" ~target:"w" "useQ" ~args:[ arg "q" f ]
          ~result:(arg "a" f);
        U.Builder.call b ~from:"T" ~target:"w" "useR" ~args:[ arg "r" f ]
          ~result:(arg "bb" f);
        U.Builder.call b ~from:"T" ~target:"w" "join2"
          ~args:[ arg "a" f; arg "bb" f ]
          ~result:(arg "y" f);
        U.Builder.call b ~from:"T" ~target:"IO" "setOut" ~args:[ arg "y" f ];
        let uml = U.Builder.finish b in
        check Alcotest.int "well-formed" 0 (List.length (U.Validate.check uml));
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment uml in
        (match find_at out.Core.Flow.caam.Model.root [ "CPU"; "T" ] "split" with
        | Some blk ->
            check Alcotest.(option int) "two outputs" (Some 2) (S.param_int blk "Outputs")
        | None -> Alcotest.fail "split block missing");
        (* execution distinguishes the two ports (the default behaviour
           offsets port 2 by 0.1) *)
        let sdf = Sdf.of_model out.Core.Flow.caam in
        let split_edges =
          List.filter
            (fun (e : Sdf.edge) -> e.Sdf.edge_src = "CPU/T/split")
            sdf.Sdf.edges
        in
        check Alcotest.(list int) "ports 1 and 2" [ 1; 2 ]
          (List.sort compare (List.map (fun (e : Sdf.edge) -> e.Sdf.edge_src_port) split_edges));
        let outcome = Exec.run ~rounds:2 sdf in
        check Alcotest.int "runs" 2 outcome.Exec.rounds);
    test "outs survive XMI and capture round-trips" (fun () ->
        let b = U.Builder.create "outs2" in
        U.Builder.thread b "T";
        U.Builder.io_device b "IO";
        U.Builder.passive_object b ~cls:"W" "w";
        U.Builder.cpu b "CPU";
        U.Builder.allocate b ~thread:"T" ~cpu:"CPU";
        let arg = U.Sequence.arg in
        let f = U.Datatype.D_float in
        U.Builder.call b ~from:"T" ~target:"IO" "getIn" ~result:(arg "x" f);
        U.Builder.call b ~from:"T" ~target:"w" "split" ~args:[ arg "x" f ]
          ~result:(arg "q" f) ~outs:[ arg "r" f ];
        U.Builder.call b ~from:"T" ~target:"w" "sum2" ~args:[ arg "q" f; arg "r" f ]
          ~result:(arg "y" f);
        U.Builder.call b ~from:"T" ~target:"IO" "setOut" ~args:[ arg "y" f ];
        let uml = U.Builder.finish b in
        (* XMI *)
        let uml' = U.Xmi.of_string (U.Xmi.to_string uml) in
        let msg_with_outs =
          List.concat_map (fun (sd : U.Sequence.t) -> sd.U.Sequence.sd_messages)
            uml'.U.Model.sequences
          |> List.find (fun (m : U.Sequence.message) -> m.U.Sequence.msg_outs <> [])
        in
        check Alcotest.int "one out kept" 1 (List.length msg_with_outs.U.Sequence.msg_outs);
        (* behavioural capture round-trip *)
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment uml in
        let recovered = Core.Capture.run out.Core.Flow.caam in
        let out2 = Core.Flow.run ~strategy:Core.Flow.Use_deployment recovered in
        let t1 = (Exec.run ~rounds:4 (Sdf.of_model out.Core.Flow.caam)).Exec.traces in
        let t2 = (Exec.run ~rounds:4 (Sdf.of_model out2.Core.Flow.caam)).Exec.traces in
        List.iter2
          (fun (p1, s1) (p2, s2) ->
            check Alcotest.string "port" p1 p2;
            check Alcotest.(array (float 1e-9)) p1 s1 s2)
          t1 t2);
    test "boundary-looking operation names do not collide with ports" (fun () ->
        let b = U.Builder.create "collide" in
        U.Builder.thread b "T1";
        U.Builder.thread b "T2";
        U.Builder.io_device b "IO";
        U.Builder.passive_object b ~cls:"W" "w";
        U.Builder.cpu b "CPU";
        U.Builder.allocate b ~thread:"T1" ~cpu:"CPU";
        U.Builder.allocate b ~thread:"T2" ~cpu:"CPU";
        let arg = U.Sequence.arg in
        let f = U.Datatype.D_float in
        (* T1 receives a token (creating boundary port In1) and calls an
           operation literally named "In1". *)
        U.Builder.call b ~from:"T2" ~target:"IO" "getIn" ~result:(arg "x" f);
        U.Builder.call b ~from:"T2" ~target:"T1" "SetX" ~args:[ arg "x" f ];
        U.Builder.call b ~from:"T1" ~target:"w" "In1" ~args:[ arg "x" f ]
          ~result:(arg "y" f);
        U.Builder.call b ~from:"T1" ~target:"IO" "setOut" ~args:[ arg "y" f ];
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (U.Builder.finish b) in
        check Alcotest.int "structural" 0 (List.length (Model.validate out.Core.Flow.caam));
        check Alcotest.bool "renamed block present" true
          (find_at out.Core.Flow.caam.Model.root [ "CPU"; "T1" ] "b_In1" <> None));
  ]

let channel_tests =
  [
    test "intra gets SWFIFO, inter gets GFIFO" (fun () ->
        let uml = didactic () in
        let mapped = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        let r = Core.Channel_inference.run mapped.Core.Mapping.model in
        check Alcotest.int "intra" 1 r.Core.Channel_inference.intra_channels;
        check Alcotest.int "inter" 1 r.Core.Channel_inference.inter_channels;
        List.iter
          (fun (path, ch) ->
            let expected =
              match Caam.classify_channel ~path with
              | Caam.Inter_cpu -> "GFIFO"
              | Caam.Intra_cpu -> "SWFIFO"
            in
            check Alcotest.(option string) "protocol" (Some expected) (Caam.protocol ch))
          (Caam.channels r.Core.Channel_inference.model));
    test "channelized CAAM passes the CAAM checker" (fun () ->
        let uml = didactic () in
        let mapped = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        let r = Core.Channel_inference.run mapped.Core.Mapping.model in
        check Alcotest.(list string) "clean" [] (Caam.check r.Core.Channel_inference.model));
    test "idempotent on an already channelized model" (fun () ->
        let uml = didactic () in
        let mapped = Core.Mapping.run ~allocation:(deployment_allocation uml) uml in
        let once = Core.Channel_inference.run mapped.Core.Mapping.model in
        let twice = Core.Channel_inference.run once.Core.Channel_inference.model in
        check Alcotest.int "no new intra" 0 twice.Core.Channel_inference.intra_channels;
        check Alcotest.int "no new inter" 0 twice.Core.Channel_inference.inter_channels);
  ]

let crane () = Umlfront_casestudies.Crane_system.model ()

let loop_tests =
  [
    test "crane gets exactly one temporal barrier" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (crane ()) in
        check Alcotest.int "one delay" 1 out.Core.Flow.delays_inserted);
    test "delay lands inside Tcontrol" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (crane ()) in
        check Alcotest.bool "in Tcontrol" true
          (find_at out.Core.Flow.caam.Model.root [ "CPU1"; "Tcontrol" ] "Delay1" <> None));
    test "broken cycle names the loop blocks" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (crane ()) in
        match out.Core.Flow.broken_cycles with
        | [ cycle ] ->
            check Alcotest.bool "sub on cycle" true
              (List.mem "CPU1/Tcontrol/sub" cycle)
        | _ -> Alcotest.fail "expected one cycle");
    test "result executes deadlock-free" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (crane ()) in
        let sdf = Sdf.of_model out.Core.Flow.caam in
        let outcome = Exec.run ~rounds:4 sdf in
        check Alcotest.int "rounds" 4 outcome.Exec.rounds);
    test "loop breaker is idempotent" (fun () ->
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment (crane ()) in
        let again = Core.Loop_breaker.run out.Core.Flow.caam in
        check Alcotest.int "nothing to do" 0 again.Core.Loop_breaker.delays_inserted);
    test "acyclic model untouched" (fun () ->
        let uml = didactic () in
        let out = Core.Flow.run ~strategy:Core.Flow.Use_deployment uml in
        check Alcotest.int "no delays" 0 out.Core.Flow.delays_inserted);
  ]

let allocation_tests =
  [
    test "task graph weights are transferred bytes" (fun () ->
        let b = U.Builder.create "x" in
        U.Builder.thread b "A";
        U.Builder.thread b "B";
        U.Builder.passive_object b ~cls:"W" "w";
        let arg = U.Sequence.arg in
        U.Builder.call b ~from:"A" ~target:"w" "make"
          ~result:(arg "t" (U.Datatype.D_named ("blob", 100)));
        U.Builder.call b ~from:"A" ~target:"B" "SetT"
          ~args:[ arg "t" (U.Datatype.D_named ("blob", 100)) ];
        let g = Core.Allocation.task_graph (U.Builder.finish b) in
        check (Alcotest.float 1e-9) "100 bytes" 100.0 (G.edge_weight g "A" "B"));
    test "Get reverses the data direction" (fun () ->
        let b = U.Builder.create "x" in
        U.Builder.thread b "A";
        U.Builder.thread b "B";
        U.Builder.passive_object b ~cls:"W" "w";
        let arg = U.Sequence.arg in
        U.Builder.call b ~from:"B" ~target:"w" "make" ~result:(arg "t" U.Datatype.D_int);
        U.Builder.call b ~from:"A" ~target:"B" "GetT" ~result:(arg "t" U.Datatype.D_int);
        let g = Core.Allocation.task_graph (U.Builder.finish b) in
        check Alcotest.bool "B to A" true (G.mem_edge g "B" "A");
        check Alcotest.bool "not A to B" false (G.mem_edge g "A" "B"));
    test "infer covers every thread exactly once" (fun () ->
        let uml = didactic () in
        let alloc = Core.Allocation.infer uml in
        check Alcotest.(list string) "threads" [ "T1"; "T2"; "T3" ]
          (List.map fst alloc));
    test "bounded strategy caps CPUs" (fun () ->
        let uml = didactic () in
        let alloc = Core.Allocation.infer ~strategy:(Core.Allocation.Bounded 1) uml in
        check Alcotest.int "one cpu" 1
          (List.length (List.sort_uniq compare (List.map snd alloc))));
    test "cyclic thread communication tolerated" (fun () ->
        (* A sends to B, B sends back to A: cyclic task graph. *)
        let b = U.Builder.create "x" in
        U.Builder.thread b "A";
        U.Builder.thread b "B";
        U.Builder.passive_object b ~cls:"W" "w";
        let arg = U.Sequence.arg in
        let f = U.Datatype.D_float in
        U.Builder.call b ~from:"A" ~target:"w" "fa" ~args:[ arg "tb" f ]
          ~result:(arg "ta" f);
        U.Builder.call b ~from:"A" ~target:"B" "SetTa" ~args:[ arg "ta" f ];
        U.Builder.call b ~from:"B" ~target:"w" "fb" ~args:[ arg "ta" f ]
          ~result:(arg "tb" f);
        U.Builder.call b ~from:"B" ~target:"A" "SetTb" ~args:[ arg "tb" f ];
        let alloc = Core.Allocation.infer (U.Builder.finish b) in
        check Alcotest.int "both placed" 2 (List.length alloc));
  ]

let flow_tests =
  [
    test "prefer-deployment uses the diagram" (fun () ->
        let out = Core.Flow.run (didactic ()) in
        check Alcotest.(option string) "T3 on CPU2" (Some "CPU2")
          (List.assoc_opt "T3" out.Core.Flow.allocation));
    test "use-deployment without diagram rejected" (fun () ->
        let b = U.Builder.create "x" in
        U.Builder.thread b "T";
        let uml = U.Builder.finish b in
        match Core.Flow.run ~strategy:Core.Flow.Use_deployment uml with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "mdl output parses back with identical stats" (fun () ->
        let out = Core.Flow.run (didactic ()) in
        let reparsed = Parser.parse_string out.Core.Flow.mdl in
        check Alcotest.(list (pair string int)) "stats" (Model.stats out.Core.Flow.caam)
          (Model.stats reparsed));
    test "final CAAM passes both validators" (fun () ->
        let out = Core.Flow.run (didactic ()) in
        check Alcotest.int "structural" 0 (List.length (Model.validate out.Core.Flow.caam));
        check Alcotest.(list string) "caam" [] (Caam.check out.Core.Flow.caam));
    test "statecharts ride along" (fun () ->
        let uml = didactic () in
        let chart =
          U.Statechart.make "mode"
            [ U.Statechart.state ~kind:U.Statechart.Initial "i"; U.Statechart.state "run" ]
            [ U.Statechart.transition ~source:"i" ~target:"run" () ]
        in
        let uml = { uml with U.Model.statecharts = [ chart ] } in
        let out = Core.Flow.run uml in
        check Alcotest.(list string) "fsm names" [ "mode" ] (List.map fst out.Core.Flow.fsms));
    test "report mentions every thread" (fun () ->
        let out = Core.Flow.run (didactic ()) in
        let text = Core.Report.flow_summary out in
        List.iter
          (fun th -> check Alcotest.bool th true (Astring_contains.contains text th))
          [ "T1"; "T2"; "T3" ]);
  ]

let uml2fsm_tests =
  [
    test "generated artifacts are non-empty" (fun () ->
        let chart =
          U.Statechart.make "blinker"
            [
              U.Statechart.state ~kind:U.Statechart.Initial "i";
              U.Statechart.state "on_";
              U.Statechart.state "off_";
            ]
            [
              U.Statechart.transition ~source:"i" ~target:"off_" ();
              U.Statechart.transition ~trigger:"tick" ~effect:"light_on" ~source:"off_"
                ~target:"on_" ();
              U.Statechart.transition ~trigger:"tick" ~effect:"light_off" ~source:"on_"
                ~target:"off_" ();
            ]
        in
        let g = Core.Uml2fsm.run_one chart in
        check Alcotest.bool "header" true (String.length g.Core.Uml2fsm.c_header > 0);
        check Alcotest.bool "source" true (String.length g.Core.Uml2fsm.c_source > 0);
        check Alcotest.bool "dot" true (String.length g.Core.Uml2fsm.dot > 0);
        check Alcotest.int "2 states" 2 (List.length g.Core.Uml2fsm.minimized.Umlfront_fsm.Fsm.states));
  ]

let suite =
  [
    ("core:mapping", mapping_tests);
    ("core:out_params", out_param_tests);
    ("core:channel_inference", channel_tests);
    ("core:loop_breaker", loop_tests);
    ("core:allocation", allocation_tests);
    ("core:flow", flow_tests);
    ("core:uml2fsm", uml2fsm_tests);
  ]
