(* The guard expression language: parsing, evaluation, C translation,
   simulator integration, and compiled inline guards. *)

module E = Umlfront_fsm.Guard_expr
module F = Umlfront_fsm.Fsm
module Codegen_c = Umlfront_fsm.Codegen_c

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f
let contains = Astring_contains.contains

let env bindings v = Option.value (List.assoc_opt v bindings) ~default:0.0
let holds bindings text = E.eval ~env:(env bindings) (E.parse_exn text)

let parse_tests =
  [
    test "number and variable" (fun () ->
        check Alcotest.bool "num" true (E.parse "42" = Ok (E.Num 42.0));
        check Alcotest.bool "var" true (E.parse "speed" = Ok (E.Var "speed")));
    test "precedence: mul before add before cmp before and before or" (fun () ->
        let e = E.parse_exn "a + b * 2 > 10 && c || d" in
        match e with
        | E.Or (E.And (E.Cmp (E.Gt, _, _), E.Var "c"), E.Var "d") -> ()
        | _ -> Alcotest.fail ("unexpected shape: " ^ E.to_string e));
    test "parentheses override" (fun () ->
        check (Alcotest.float 1e-9) "(1+2)*3" 9.0
          (E.eval_float ~env:(env []) (E.parse_exn "(1 + 2) * 3")));
    test "unary minus and not" (fun () ->
        check (Alcotest.float 1e-9) "-4" (-4.0) (E.eval_float ~env:(env []) (E.parse_exn "-4"));
        check Alcotest.bool "!0" true (holds [] "!0");
        check Alcotest.bool "!1" false (holds [] "!1");
        check Alcotest.bool "!!1" true (holds [] "!!1"));
    test "junk rejected" (fun () ->
        List.iter
          (fun bad ->
            match E.parse bad with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail ("accepted " ^ bad))
          [ ""; "a +"; "(a"; "a b"; "&& a"; "1.2.3" ]);
    test "variables collected sorted distinct" (fun () ->
        check Alcotest.(list string) "vars" [ "a"; "b" ]
          (E.variables (E.parse_exn "a > b && a + b < 2 * a")));
  ]

let eval_tests =
  [
    test "comparisons" (fun () ->
        check Alcotest.bool "lt" true (holds [ ("x", 1.0) ] "x < 2");
        check Alcotest.bool "le" true (holds [ ("x", 2.0) ] "x <= 2");
        check Alcotest.bool "eq" true (holds [ ("x", 2.0) ] "x == 2");
        check Alcotest.bool "ne" true (holds [ ("x", 3.0) ] "x != 2");
        check Alcotest.bool "ge" false (holds [ ("x", 1.0) ] "x >= 2"));
    test "boolean connectives short behaviour" (fun () ->
        check Alcotest.bool "and" false (holds [ ("a", 1.0) ] "a && b");
        check Alcotest.bool "or" true (holds [ ("a", 1.0) ] "a || b");
        check Alcotest.bool "mix" true
          (holds [ ("mode", 2.0); ("speed", 80.0) ] "mode == 2 && speed > 50"));
    test "truthiness of bare arithmetic" (fun () ->
        check Alcotest.bool "nonzero" true (holds [ ("x", 0.5) ] "x * 2");
        check Alcotest.bool "zero" false (holds [] "3 - 3"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"to_string round-trips evaluation" ~count:200
         (QCheck.make
            ~print:(fun (a, b, c) -> Printf.sprintf "a=%f b=%f c=%f" a b c)
            QCheck.Gen.(triple (float_bound_inclusive 10.0) (float_bound_inclusive 10.0)
                          (float_bound_inclusive 10.0)))
         (fun (a, b, c) ->
           let bindings = [ ("a", a); ("b", b); ("c", c) ] in
           List.for_all
             (fun text ->
               let e = E.parse_exn text in
               let reparsed = E.parse_exn (E.to_string e) in
               E.eval ~env:(env bindings) e = E.eval ~env:(env bindings) reparsed)
             [
               "a > b"; "a + b * c > 5"; "!(a < b) || c == 0"; "a / (b + 1) <= c";
               "a - b - c"; "a && b || !c";
             ]));
  ]

let guarded_fsm =
  F.make ~name:"cruise" ~initial:"off" ~states:[ "off"; "on" ]
    [
      {
        F.t_src = "off";
        t_event = "engage";
        t_guard = Some "speed >= 40 && speed <= 120";
        t_actions = [ "hold" ];
        t_dst = "on";
      };
      { F.t_src = "on"; t_event = "brake"; t_guard = None; t_actions = []; t_dst = "off" };
    ]

let integration_tests =
  [
    test "evaluator drives the simulator" (fun () ->
        let slow = E.evaluator [ ("speed", 30.0) ] in
        let cruising = E.evaluator [ ("speed", 90.0) ] in
        check Alcotest.bool "too slow" true
          (F.step ~guard_eval:slow guarded_fsm ~state:"off" ~event:"engage" = None);
        check Alcotest.bool "engages" true
          (F.step ~guard_eval:cruising guarded_fsm ~state:"off" ~event:"engage" <> None));
    test "unparsable guards stay conservatively true" (fun () ->
        let eval = E.evaluator [] in
        check Alcotest.bool "opaque" true (eval "operator says ok"));
    test "inline guards compile to C expressions" (fun () ->
        let src = Codegen_c.source ~inline_guards:true guarded_fsm in
        let hdr = Codegen_c.header ~inline_guards:true guarded_fsm in
        check Alcotest.bool "expression" true (contains src "(speed >= 40)");
        check Alcotest.bool "extern var" true (contains hdr "extern double speed;");
        check Alcotest.bool "no callback" false (contains hdr "cruise_guard_"));
    test "inline-guard C compiles and evaluates" (fun () ->
        let dir = Filename.temp_file "fsmguard" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        Codegen_c.save ~inline_guards:true guarded_fsm ~dir;
        let stub = Filename.concat dir "stub.c" in
        let oc = open_out stub in
        output_string oc
          "#include \"cruise.h\"\n\
           double speed = 0.0;\n\
           void cruise_action_hold(void) {}\n\
           int main(void) {\n\
           \  speed = 30.0;\n\
           \  if (cruise_step(cruise_initial(), CRUISE_EV_ENGAGE) != CRUISE_ST_OFF) return 1;\n\
           \  speed = 90.0;\n\
           \  if (cruise_step(cruise_initial(), CRUISE_EV_ENGAGE) != CRUISE_ST_ON) return 2;\n\
           \  return 0;\n\
           }\n";
        close_out oc;
        let bin = Filename.concat dir "t" in
        check Alcotest.int "gcc" 0
          (Sys.command
             (Printf.sprintf "gcc -o %s %s %s 2>/dev/null" bin
                (Filename.concat dir "cruise.c") stub));
        check Alcotest.int "guard behaviour" 0 (Sys.command bin));
  ]

let suite =
  [
    ("guards:parse", parse_tests);
    ("guards:eval", eval_tests);
    ("guards:integration", integration_tests);
  ]
