module Meta = Umlfront_metamodel.Meta
module Mm = Umlfront_metamodel.Mmodel
module Engine = Umlfront_transform.Engine
module M2t = Umlfront_transform.M2t

let check = Alcotest.check
let test name f = Alcotest.test_case name `Quick f

(* Source metamodel: a tiny class diagram.  Target: a relational
   schema.  Class2Table / Attribute2Column is the canonical ATL demo. *)
let class_mm =
  Meta.create ~name:"class"
    [
      Meta.metaclass "Class"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:[ Meta.reference ~containment:true ~many:true "attributes" "Attribute" ];
      Meta.metaclass "Attribute"
        ~attributes:
          [
            Meta.attribute ~required:true "name" Meta.T_string;
            Meta.attribute "derived" Meta.T_bool;
          ];
    ]

let table_mm =
  Meta.create ~name:"relational"
    [
      Meta.metaclass "Table"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ]
        ~references:[ Meta.reference ~containment:true ~many:true "columns" "Column" ];
      Meta.metaclass "Column"
        ~attributes:[ Meta.attribute ~required:true "name" Meta.T_string ];
    ]

let sample_source () =
  let m = Mm.create class_mm in
  let person = Mm.new_object ~id:"person" m "Class" in
  Mm.set_string m person "name" "Person";
  let age = Mm.new_object ~id:"age" m "Attribute" in
  Mm.set_string m age "name" "age";
  let label = Mm.new_object ~id:"label" m "Attribute" in
  Mm.set_string m label "name" "label";
  Mm.set_bool m label "derived" true;
  Mm.add_ref m ~src:person "attributes" ~dst:age;
  Mm.add_ref m ~src:person "attributes" ~dst:label;
  m

let class2table =
  Engine.rule ~name:"class2table" ~source:"Class"
    (fun ctx obj ->
      let table = Mm.new_object ctx.Engine.target "Table" in
      Mm.set_string ctx.Engine.target table "name"
        (Option.value (Mm.get_string obj "name") ~default:"?");
      [ table ])
    ~bind:(fun ctx obj targets ->
      match targets with
      | [ table ] ->
          Mm.refs ctx.Engine.source obj "attributes"
          |> List.iter (fun attr ->
                 match Engine.resolve ~rule:"attr2column" ctx attr with
                 | Some col -> Mm.add_ref ctx.Engine.target ~src:table "columns" ~dst:col
                 | None -> ())
      | _ -> ())

let attr2column =
  Engine.rule ~name:"attr2column" ~source:"Attribute"
    ~guard:(fun _ obj -> Mm.get_bool obj "derived" <> Some true)
    (fun ctx obj ->
      let col = Mm.new_object ctx.Engine.target "Column" in
      Mm.set_string ctx.Engine.target col "name"
        (Option.value (Mm.get_string obj "name") ~default:"?");
      [ col ])

let run_sample () =
  Engine.run ~rules:[ class2table; attr2column ] ~source:(sample_source ())
    ~target_metamodel:table_mm

let engine_tests =
  [
    test "produce phase creates targets" (fun () ->
        let r = run_sample () in
        check Alcotest.int "1 table" 1 (List.length (Mm.all_of_class r.Engine.output "Table"));
        check Alcotest.int "1 column" 1 (List.length (Mm.all_of_class r.Engine.output "Column")));
    test "guard filters derived attributes" (fun () ->
        let r = run_sample () in
        let cols = Mm.all_of_class r.Engine.output "Column" in
        check Alcotest.(list (option string)) "only age" [ Some "age" ]
          (List.map (fun c -> Mm.get_string c "name") cols));
    test "bind phase wires references via trace" (fun () ->
        let r = run_sample () in
        match Mm.all_of_class r.Engine.output "Table" with
        | [ table ] ->
            check Alcotest.int "one column wired" 1
              (List.length (Mm.refs r.Engine.output table "columns"))
        | _ -> Alcotest.fail "expected one table");
    test "applied counts per rule" (fun () ->
        let r = run_sample () in
        check Alcotest.(option int) "class2table" (Some 1)
          (List.assoc_opt "class2table" r.Engine.applied);
        check Alcotest.(option int) "attr2column" (Some 1)
          (List.assoc_opt "attr2column" r.Engine.applied));
    test "trace links source to target ids" (fun () ->
        let r = run_sample () in
        check Alcotest.int "person traced" 1
          (List.length (Umlfront_metamodel.Trace.targets_of r.Engine.links "person")));
    test "target model validates" (fun () ->
        let r = run_sample () in
        check Alcotest.int "clean" 0 (List.length (Mm.validate r.Engine.output)));
    test "subclass matching applies superclass rules" (fun () ->
        let mm =
          Meta.create ~name:"s"
            [ Meta.metaclass "Base"; Meta.metaclass ~super:"Base" "Derived" ]
        in
        let src = Mm.create mm in
        ignore (Mm.new_object src "Derived");
        let rule =
          Engine.rule ~name:"base" ~source:"Base" (fun ctx _ ->
              [ Mm.new_object ctx.Engine.target "Base" ])
        in
        let r = Engine.run ~rules:[ rule ] ~source:src ~target_metamodel:mm in
        check Alcotest.(option int) "fired" (Some 1) (List.assoc_opt "base" r.Engine.applied));
  ]

let m2t_tests =
  [
    test "line and indent" (fun () ->
        let t = M2t.create () in
        M2t.line t "a";
        M2t.indented t (fun () -> M2t.line t "b");
        M2t.line t "c";
        check Alcotest.string "text" "a\n  b\nc\n" (M2t.contents t));
    test "block helper" (fun () ->
        let t = M2t.create () in
        M2t.block t ~opener:"begin" ~closer:"end" (fun () -> M2t.line t "x");
        check Alcotest.string "text" "begin\n  x\nend\n" (M2t.contents t));
    test "custom indent step" (fun () ->
        let t = M2t.create ~indent_step:4 () in
        M2t.indented t (fun () -> M2t.line t "deep");
        check Alcotest.string "text" "    deep\n" (M2t.contents t));
    test "formatted lines" (fun () ->
        let t = M2t.create () in
        M2t.line t "%s = %d;" "x" 42;
        check Alcotest.string "text" "x = 42;\n" (M2t.contents t));
  ]

let suite = [ ("transform:engine", engine_tests); ("transform:m2t", m2t_tests) ]
